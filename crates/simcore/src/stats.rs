//! Latency statistics: exact percentiles, CDF extraction, and streaming
//! summaries.
//!
//! The paper reports latency CDFs (Figures 4-8, 11-13), percentile tables
//! (p75/p90/p95/p99), and percentage latency reductions between strategies
//! (Figures 5b, 6d, 7b, 8b). [`LatencyRecorder`] collects every sample so
//! those statistics are exact, matching how the authors post-process YCSB
//! client logs.

use crate::time::Duration;

/// Collects latency samples and answers exact percentile/CDF queries.
#[derive(Debug, Clone, Default)]
pub struct LatencyRecorder {
    samples: Vec<u64>,
    sorted: bool,
}

impl LatencyRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: Duration) {
        self.samples.push(latency.as_nanos());
        self.sorted = false;
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
    }

    /// The `q`-quantile (`q` in `[0, 1]`) by the nearest-rank method.
    ///
    /// # Panics
    ///
    /// Panics if the recorder is empty or `q` is outside `[0, 1]`.
    pub fn quantile(&mut self, q: f64) -> Duration {
        assert!(!self.samples.is_empty(), "quantile of empty recorder");
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0,1]");
        self.ensure_sorted();
        let n = self.samples.len();
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        Duration::from_nanos(self.samples[rank - 1])
    }

    /// Percentile shorthand: `percentile(95.0)` is the p95 latency.
    pub fn percentile(&mut self, p: f64) -> Duration {
        self.quantile(p / 100.0)
    }

    /// Arithmetic mean of all samples.
    ///
    /// # Panics
    ///
    /// Panics if the recorder is empty.
    pub fn mean(&self) -> Duration {
        assert!(!self.samples.is_empty(), "mean of empty recorder");
        let sum: u128 = self.samples.iter().map(|&s| s as u128).sum();
        Duration::from_nanos((sum / self.samples.len() as u128) as u64)
    }

    /// Largest sample.
    pub fn max(&mut self) -> Duration {
        assert!(!self.samples.is_empty(), "max of empty recorder");
        self.ensure_sorted();
        Duration::from_nanos(*self.samples.last().expect("non-empty"))
    }

    /// Smallest sample.
    pub fn min(&mut self) -> Duration {
        assert!(!self.samples.is_empty(), "min of empty recorder");
        self.ensure_sorted();
        Duration::from_nanos(self.samples[0])
    }

    /// Fraction of samples strictly greater than `threshold`.
    pub fn fraction_above(&self, threshold: Duration) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let t = threshold.as_nanos();
        let above = self.samples.iter().filter(|&&s| s > t).count();
        above as f64 / self.samples.len() as f64
    }

    /// Extracts `points` evenly spaced CDF points as
    /// `(latency, cumulative_probability)` pairs — the series plotted in the
    /// paper's CDF figures.
    pub fn cdf(&mut self, points: usize) -> Vec<(Duration, f64)> {
        assert!(points >= 2, "need at least two CDF points");
        if self.samples.is_empty() {
            return Vec::new();
        }
        self.ensure_sorted();
        let n = self.samples.len();
        (0..points)
            .map(|i| {
                let q = i as f64 / (points - 1) as f64;
                let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
                (Duration::from_nanos(self.samples[rank - 1]), q)
            })
            .collect()
    }

    /// Merges another recorder's samples into this one.
    pub fn merge(&mut self, other: &LatencyRecorder) {
        self.samples.extend_from_slice(&other.samples);
        self.sorted = false;
    }

    /// Read-only view of the raw samples (unsorted order not guaranteed).
    pub fn samples(&self) -> &[u64] {
        &self.samples
    }
}

/// Percentage latency reduction of `ours` versus `other`, the paper's
/// `(T_other - T_mittos) / T_other` metric (footnote 2). Positive means
/// `ours` is faster.
pub fn reduction_pct(other: Duration, ours: Duration) -> f64 {
    if other.is_zero() {
        return 0.0;
    }
    100.0 * (other.as_nanos() as f64 - ours.as_nanos() as f64) / other.as_nanos() as f64
}

/// Streaming mean/variance via Welford's algorithm, for counters where
/// keeping every sample would be wasteful.
#[derive(Debug, Clone, Copy, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean of the observations (0 if empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (0 if fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }
}

/// Fixed-width histogram over durations, used for timeline plots such as
/// the per-bucket noise occupancy of Figure 13b.
#[derive(Debug, Clone)]
pub struct TimeHistogram {
    bucket: Duration,
    counts: Vec<u64>,
}

impl TimeHistogram {
    /// Creates a histogram with `buckets` buckets of width `bucket`.
    ///
    /// # Panics
    ///
    /// Panics if `bucket` is zero or `buckets` is zero.
    pub fn new(bucket: Duration, buckets: usize) -> Self {
        assert!(!bucket.is_zero() && buckets > 0, "degenerate histogram");
        TimeHistogram {
            bucket,
            counts: vec![0; buckets],
        }
    }

    /// Adds `weight` at offset `at` from the histogram origin. Samples past
    /// the last bucket are clamped into it.
    pub fn add(&mut self, at: Duration, weight: u64) {
        let idx = (at.as_nanos() / self.bucket.as_nanos()) as usize;
        let idx = idx.min(self.counts.len() - 1);
        self.counts[idx] += weight;
    }

    /// The per-bucket totals.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// The bucket width.
    pub fn bucket_width(&self) -> Duration {
        self.bucket
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(x: u64) -> Duration {
        Duration::from_millis(x)
    }

    #[test]
    fn percentiles_nearest_rank() {
        let mut r = LatencyRecorder::new();
        for i in 1..=100 {
            r.record(ms(i));
        }
        assert_eq!(r.percentile(50.0), ms(50));
        assert_eq!(r.percentile(95.0), ms(95));
        assert_eq!(r.percentile(99.0), ms(99));
        assert_eq!(r.percentile(100.0), ms(100));
        assert_eq!(r.quantile(0.0), ms(1));
        assert_eq!(r.min(), ms(1));
        assert_eq!(r.max(), ms(100));
    }

    #[test]
    fn mean_is_exact() {
        let mut r = LatencyRecorder::new();
        r.record(ms(10));
        r.record(ms(20));
        r.record(ms(30));
        assert_eq!(r.mean(), ms(20));
    }

    #[test]
    fn fraction_above_counts_strictly_greater() {
        let mut r = LatencyRecorder::new();
        for i in 1..=10 {
            r.record(ms(i));
        }
        assert!((r.fraction_above(ms(5)) - 0.5).abs() < 1e-9);
        assert_eq!(r.fraction_above(ms(10)), 0.0);
        assert_eq!(r.fraction_above(Duration::ZERO), 1.0);
    }

    #[test]
    fn cdf_is_monotone() {
        let mut r = LatencyRecorder::new();
        let mut x = 17u64;
        for _ in 0..1000 {
            x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            r.record(Duration::from_nanos(x % 1_000_000));
        }
        let cdf = r.cdf(50);
        for w in cdf.windows(2) {
            assert!(w[1].0 >= w[0].0, "latency axis must be monotone");
            assert!(w[1].1 >= w[0].1, "probability axis must be monotone");
        }
        assert_eq!(cdf.first().unwrap().1, 0.0);
        assert_eq!(cdf.last().unwrap().1, 1.0);
    }

    #[test]
    fn merge_combines_samples() {
        let mut a = LatencyRecorder::new();
        let mut b = LatencyRecorder::new();
        a.record(ms(1));
        b.record(ms(3));
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.max(), ms(3));
    }

    #[test]
    fn reduction_pct_signs() {
        assert!((reduction_pct(ms(100), ms(75)) - 25.0).abs() < 1e-9);
        assert!(reduction_pct(ms(50), ms(100)) < 0.0);
        assert_eq!(reduction_pct(Duration::ZERO, ms(1)), 0.0);
    }

    #[test]
    fn online_stats_match_closed_form() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn time_histogram_buckets_and_clamps() {
        let mut h = TimeHistogram::new(ms(10), 3);
        h.add(ms(0), 1);
        h.add(ms(9), 1);
        h.add(ms(10), 2);
        h.add(ms(500), 5); // clamped to last bucket
        assert_eq!(h.counts(), &[2, 2, 5]);
        assert_eq!(h.bucket_width(), ms(10));
    }

    #[test]
    #[should_panic(expected = "quantile of empty recorder")]
    fn quantile_empty_panics() {
        LatencyRecorder::new().quantile(0.5);
    }
}

/// Streaming quantile estimation with the P² algorithm (Jain & Chlamtac,
/// 1985): five markers, O(1) memory, no sample retention.
///
/// [`LatencyRecorder`] keeps every sample for exact figures; `P2Quantile`
/// serves long-running monitors — e.g. the runtime p95 estimate a
/// deployment would feed into its deadline choice (§7.2) without storing
/// millions of latencies.
#[derive(Debug, Clone)]
pub struct P2Quantile {
    q: f64,
    heights: [f64; 5],
    positions: [f64; 5],
    desired: [f64; 5],
    increments: [f64; 5],
    count: usize,
}

impl P2Quantile {
    /// Creates an estimator for quantile `q` in `(0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not strictly between 0 and 1.
    pub fn new(q: f64) -> Self {
        assert!(q > 0.0 && q < 1.0, "quantile must be in (0,1)");
        P2Quantile {
            q,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            count: 0,
        }
    }

    /// Observes one duration.
    pub fn observe(&mut self, d: Duration) {
        self.observe_f64(d.as_nanos() as f64);
    }

    /// Observes one raw value.
    pub fn observe_f64(&mut self, x: f64) {
        if self.count < 5 {
            self.heights[self.count] = x;
            self.count += 1;
            if self.count == 5 {
                self.heights.sort_by(f64::total_cmp);
            }
            return;
        }
        self.count += 1;
        // Find the cell k the observation falls into and clamp extremes.
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            let mut cell = 0;
            for i in 0..4 {
                if x >= self.heights[i] && x < self.heights[i + 1] {
                    cell = i;
                    break;
                }
            }
            cell
        };
        for p in self.positions.iter_mut().skip(k + 1) {
            *p += 1.0;
        }
        for (d, inc) in self.desired.iter_mut().zip(self.increments) {
            *d += inc;
        }
        // Adjust the three middle markers by parabolic (or linear)
        // interpolation.
        for i in 1..4 {
            let delta = self.desired[i] - self.positions[i];
            let below = self.positions[i] - self.positions[i - 1];
            let above = self.positions[i + 1] - self.positions[i];
            if (delta >= 1.0 && above > 1.0) || (delta <= -1.0 && below > 1.0) {
                let sign = delta.signum();
                let candidate = self.parabolic(i, sign);
                self.heights[i] =
                    if self.heights[i - 1] < candidate && candidate < self.heights[i + 1] {
                        candidate
                    } else {
                        self.linear(i, sign)
                    };
                self.positions[i] += sign;
            }
        }
    }

    fn parabolic(&self, i: usize, sign: f64) -> f64 {
        let p = &self.positions;
        let h = &self.heights;
        h[i] + sign / (p[i + 1] - p[i - 1])
            * ((p[i] - p[i - 1] + sign) * (h[i + 1] - h[i]) / (p[i + 1] - p[i])
                + (p[i + 1] - p[i] - sign) * (h[i] - h[i - 1]) / (p[i] - p[i - 1]))
    }

    fn linear(&self, i: usize, sign: f64) -> f64 {
        let j = (i as f64 + sign) as usize;
        self.heights[i]
            + sign * (self.heights[j] - self.heights[i]) / (self.positions[j] - self.positions[i])
    }

    /// The current quantile estimate.
    ///
    /// # Panics
    ///
    /// Panics before any observation.
    pub fn estimate(&self) -> Duration {
        Duration::from_nanos(self.estimate_f64().max(0.0) as u64)
    }

    /// The raw estimate (exact order statistic until five samples).
    pub fn estimate_f64(&self) -> f64 {
        assert!(self.count > 0, "estimate before any observation");
        if self.count < 5 {
            let mut tmp: Vec<f64> = self.heights[..self.count].to_vec();
            tmp.sort_by(f64::total_cmp);
            let rank = ((self.q * self.count as f64).ceil() as usize).clamp(1, self.count);
            return tmp[rank - 1];
        }
        self.heights[2]
    }

    /// Observations seen so far.
    pub fn count(&self) -> usize {
        self.count
    }
}

#[cfg(test)]
mod p2_tests {
    use super::*;
    use crate::rng::SimRng;

    #[test]
    fn tracks_uniform_p95_within_a_few_percent() {
        let mut p2 = P2Quantile::new(0.95);
        let mut exact = LatencyRecorder::new();
        let mut rng = SimRng::new(9);
        for _ in 0..50_000 {
            let x = rng.range_u64(0, 1_000_000);
            p2.observe(Duration::from_nanos(x));
            exact.record(Duration::from_nanos(x));
        }
        let est = p2.estimate().as_nanos() as f64;
        let truth = exact.quantile(0.95).as_nanos() as f64;
        assert!(
            (est - truth).abs() / truth < 0.03,
            "p95 estimate {est} vs exact {truth}"
        );
    }

    #[test]
    fn tracks_heavy_tailed_median() {
        use crate::dist::{Distribution, LogNormal};
        let dist = LogNormal::from_median(5.0, 1.2);
        let mut p2 = P2Quantile::new(0.5);
        let mut rng = SimRng::new(10);
        for _ in 0..100_000 {
            p2.observe_f64(dist.sample(&mut rng));
        }
        let est = p2.estimate_f64();
        assert!((est - 5.0).abs() / 5.0 < 0.05, "median estimate {est}");
    }

    #[test]
    fn small_sample_is_exact() {
        let mut p2 = P2Quantile::new(0.5);
        for x in [30.0, 10.0, 20.0] {
            p2.observe_f64(x);
        }
        assert_eq!(p2.estimate_f64(), 20.0);
        assert_eq!(p2.count(), 3);
    }

    #[test]
    #[should_panic(expected = "estimate before any observation")]
    fn empty_estimate_panics() {
        P2Quantile::new(0.9).estimate_f64();
    }

    #[test]
    fn monotone_inputs_stay_bracketed() {
        let mut p2 = P2Quantile::new(0.9);
        for i in 0..10_000 {
            p2.observe_f64(f64::from(i));
        }
        let est = p2.estimate_f64();
        assert!((8_000.0..10_000.0).contains(&est), "p90 estimate {est}");
    }
}
