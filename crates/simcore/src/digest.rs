//! Order-sensitive result digests for determinism checks.
//!
//! The static rules in `mitt-lint` keep nondeterminism *sources* out of the
//! tree; this module is the dynamic complement. A simulation run folds its
//! observable outputs — completion times, counters, latency samples — into
//! one [`Fnv1a`] digest, and the double-run harness (`tests/determinism.rs`
//! at the workspace root) asserts that two runs from the same seed produce
//! the same 64-bit digest. Any nondeterminism anywhere in the event stream
//! cascades into a digest mismatch, bit-for-bit.
//!
//! FNV-1a is used because it is tiny, dependency-free, stable across
//! platforms, and *order-sensitive*: it detects event reorderings that an
//! order-insensitive checksum (e.g. XOR of hashes) would cancel out.

/// A 64-bit FNV-1a streaming hasher.
///
/// # Examples
///
/// ```
/// use mitt_sim::digest::Fnv1a;
///
/// let mut a = Fnv1a::new();
/// a.write_u64(42);
/// let mut b = Fnv1a::new();
/// b.write_u64(42);
/// assert_eq!(a.finish(), b.finish());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv1a {
    state: u64,
}

/// FNV-1a 64-bit offset basis.
const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const PRIME: u64 = 0x0000_0100_0000_01b3;

impl Fnv1a {
    /// A fresh hasher at the offset basis.
    pub const fn new() -> Self {
        Fnv1a {
            state: OFFSET_BASIS,
        }
    }

    /// Folds raw bytes into the digest.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(PRIME);
        }
    }

    /// Folds a `u64` (little-endian bytes).
    pub fn write_u64(&mut self, x: u64) {
        self.write_bytes(&x.to_le_bytes());
    }

    /// Folds an `i64` (little-endian bytes).
    pub fn write_i64(&mut self, x: i64) {
        self.write_bytes(&x.to_le_bytes());
    }

    /// Folds a `usize` widened to `u64` so digests agree across platforms.
    pub fn write_usize(&mut self, x: usize) {
        self.write_u64(x as u64);
    }

    /// Folds an `f64` through its IEEE-754 bit pattern (exact, not rounded).
    pub fn write_f64(&mut self, x: f64) {
        self.write_u64(x.to_bits());
    }

    /// Folds a string's UTF-8 bytes, length-prefixed so concatenations
    /// cannot collide (`"ab" + "c"` vs `"a" + "bc"`).
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write_bytes(s.as_bytes());
    }

    /// Folds a slice of `u64` samples, length-prefixed.
    pub fn write_u64_slice(&mut self, xs: &[u64]) {
        self.write_usize(xs.len());
        for &x in xs {
            self.write_u64(x);
        }
    }

    /// The current digest value.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a::new()
    }
}

/// Runs `fold` twice on fresh hashers and returns both digests.
///
/// The closure must fully describe one simulation run (construct, run, fold
/// outputs); determinism holds iff the two digests are equal. Keeping the
/// construction inside the closure guarantees no state leaks between runs.
pub fn double_run<F: FnMut(&mut Fnv1a)>(mut fold: F) -> (u64, u64) {
    let mut first = Fnv1a::new();
    fold(&mut first);
    let mut second = Fnv1a::new();
    fold(&mut second);
    (first.finish(), second.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_fnv1a_vectors() {
        // Reference vectors from the canonical FNV test suite.
        assert_eq!(Fnv1a::new().finish(), 0xcbf2_9ce4_8422_2325);
        let mut h = Fnv1a::new();
        h.write_bytes(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
        let mut h = Fnv1a::new();
        h.write_bytes(b"foobar");
        assert_eq!(h.finish(), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn order_sensitive() {
        let mut ab = Fnv1a::new();
        ab.write_u64(1);
        ab.write_u64(2);
        let mut ba = Fnv1a::new();
        ba.write_u64(2);
        ba.write_u64(1);
        assert_ne!(ab.finish(), ba.finish());
    }

    #[test]
    fn length_prefix_prevents_concat_collisions() {
        let mut a = Fnv1a::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = Fnv1a::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn double_run_agrees_for_pure_folds() {
        let (x, y) = double_run(|h| {
            let mut rng = crate::SimRng::new(7);
            for _ in 0..100 {
                h.write_u64(rng.next_u64());
            }
        });
        assert_eq!(x, y);
    }
}
