//! Probability distributions used by workloads, noise processes, and device
//! jitter models.
//!
//! Everything here samples through [`SimRng`], so simulations remain
//! deterministic. The Zipfian sampler follows the YCSB/Gray rejection
//! construction so key popularity matches the paper's YCSB workloads.

use crate::rng::SimRng;

/// A sampleable distribution over `f64`.
pub trait Distribution {
    /// Draws one sample.
    fn sample(&self, rng: &mut SimRng) -> f64;
}

/// Exponential distribution with the given rate parameter (1/mean).
///
/// Used for Poisson arrival processes (open-loop request arrivals, noise
/// burst arrivals).
#[derive(Debug, Clone, Copy)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates an exponential distribution with rate `rate` (> 0).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive and finite.
    pub fn new(rate: f64) -> Self {
        assert!(rate > 0.0 && rate.is_finite(), "invalid rate {rate}");
        Exponential { rate }
    }

    /// Creates an exponential distribution with the given mean (> 0).
    pub fn from_mean(mean: f64) -> Self {
        Exponential::new(1.0 / mean)
    }
}

impl Distribution for Exponential {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        -rng.unit_open_f64().ln() / self.rate
    }
}

/// Normal distribution sampled via Box-Muller.
#[derive(Debug, Clone, Copy)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates a normal distribution.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative or non-finite.
    pub fn new(mean: f64, std_dev: f64) -> Self {
        assert!(std_dev >= 0.0 && std_dev.is_finite(), "invalid std dev");
        Normal { mean, std_dev }
    }
}

impl Distribution for Normal {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        let u1 = rng.unit_open_f64();
        let u2 = rng.unit_f64();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        self.mean + self.std_dev * z
    }
}

/// Log-normal distribution: `exp(Normal(mu, sigma))`.
///
/// Heavy-tailed; models noise burst lengths and service-time outliers.
#[derive(Debug, Clone, Copy)]
pub struct LogNormal {
    norm: Normal,
}

impl LogNormal {
    /// Creates a log-normal from the underlying normal's `mu` and `sigma`.
    pub fn new(mu: f64, sigma: f64) -> Self {
        LogNormal {
            norm: Normal::new(mu, sigma),
        }
    }

    /// Creates a log-normal with the given median (`exp(mu)`) and `sigma`.
    ///
    /// # Panics
    ///
    /// Panics if `median` is not strictly positive.
    pub fn from_median(median: f64, sigma: f64) -> Self {
        assert!(median > 0.0, "median must be positive");
        LogNormal::new(median.ln(), sigma)
    }
}

impl Distribution for LogNormal {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        self.norm.sample(rng).exp()
    }
}

/// Bounded Pareto distribution over `[lo, hi]` with shape `alpha`.
///
/// Models heavy-tailed noise inter-arrival times (Fig 3d-f of the paper
/// shows inter-arrivals spread over many seconds with a heavy tail).
#[derive(Debug, Clone, Copy)]
pub struct BoundedPareto {
    lo: f64,
    hi: f64,
    alpha: f64,
}

impl BoundedPareto {
    /// Creates a bounded Pareto distribution.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < lo < hi` and `alpha > 0`.
    pub fn new(lo: f64, hi: f64, alpha: f64) -> Self {
        assert!(lo > 0.0 && hi > lo, "need 0 < lo < hi");
        assert!(alpha > 0.0, "alpha must be positive");
        BoundedPareto { lo, hi, alpha }
    }
}

impl Distribution for BoundedPareto {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        // Inverse-CDF sampling for the bounded Pareto.
        let u = rng.unit_f64();
        let la = self.lo.powf(self.alpha);
        let ha = self.hi.powf(self.alpha);
        (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / self.alpha)
    }
}

/// Uniform distribution over `[lo, hi)`.
#[derive(Debug, Clone, Copy)]
pub struct Uniform {
    lo: f64,
    hi: f64,
}

impl Uniform {
    /// Creates a uniform distribution over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo < hi, "empty range");
        Uniform { lo, hi }
    }
}

impl Distribution for Uniform {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        rng.range_f64(self.lo, self.hi)
    }
}

/// Zipfian distribution over `0..n` with skew `theta`, using the
/// Gray et al. construction popularized by YCSB.
///
/// Item 0 is the most popular. `theta = 0.99` matches YCSB's default.
#[derive(Debug, Clone)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2: f64,
}

impl Zipfian {
    /// Creates a Zipfian distribution over `0..n`.
    ///
    /// Construction is O(n) (computes the zeta normalization constant);
    /// sampling is O(1).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is not in `(0, 1)`.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "empty item space");
        assert!((0.0..1.0).contains(&theta) && theta > 0.0, "theta in (0,1)");
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipfian {
            n,
            theta,
            alpha,
            zetan,
            eta,
            zeta2,
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    }

    /// Draws one item rank in `0..n` (0 = most popular).
    pub fn sample_index(&self, rng: &mut SimRng) -> u64 {
        let u = rng.unit_f64();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let spread = self.eta * u - self.eta + 1.0;
        ((self.n as f64) * spread.powf(self.alpha)) as u64
    }

    /// The size of the item space.
    pub fn item_count(&self) -> u64 {
        self.n
    }

    /// The zeta(2, theta) constant, exposed for testing.
    #[doc(hidden)]
    pub fn zeta2(&self) -> f64 {
        self.zeta2
    }
}

impl Distribution for Zipfian {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        self.sample_index(rng) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_of(dist: &impl Distribution, seed: u64, n: usize) -> f64 {
        let mut rng = SimRng::new(seed);
        (0..n).map(|_| dist.sample(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn exponential_mean_matches() {
        let d = Exponential::from_mean(4.0);
        let m = mean_of(&d, 1, 200_000);
        assert!((m - 4.0).abs() < 0.05, "mean={m}");
    }

    #[test]
    fn exponential_is_positive() {
        let d = Exponential::new(2.0);
        let mut rng = SimRng::new(2);
        assert!((0..10_000).all(|_| d.sample(&mut rng) > 0.0));
    }

    #[test]
    fn normal_moments() {
        let d = Normal::new(10.0, 3.0);
        let mut rng = SimRng::new(3);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean={mean}");
        assert!((var - 9.0).abs() < 0.2, "var={var}");
    }

    #[test]
    fn lognormal_median_matches() {
        let d = LogNormal::from_median(5.0, 1.0);
        let mut rng = SimRng::new(4);
        let mut samples: Vec<f64> = (0..100_001).map(|_| d.sample(&mut rng)).collect();
        samples.sort_by(f64::total_cmp);
        let median = samples[50_000];
        assert!((median - 5.0).abs() < 0.2, "median={median}");
    }

    #[test]
    fn bounded_pareto_stays_in_bounds() {
        let d = BoundedPareto::new(0.1, 20.0, 1.2);
        let mut rng = SimRng::new(5);
        for _ in 0..50_000 {
            let x = d.sample(&mut rng);
            assert!((0.1..=20.0).contains(&x), "sample {x} out of bounds");
        }
    }

    #[test]
    fn zipfian_ranks_in_range_and_skewed() {
        let d = Zipfian::new(1000, 0.99);
        let mut rng = SimRng::new(6);
        let mut counts = vec![0u32; 1000];
        for _ in 0..100_000 {
            let i = d.sample_index(&mut rng);
            assert!(i < 1000);
            counts[i as usize] += 1;
        }
        // Rank 0 should dominate and the head should hold most of the mass.
        assert!(counts[0] > counts[10] && counts[0] > counts[500].max(1) * 20);
        let head: u32 = counts[..100].iter().sum();
        assert!(head as f64 > 0.6 * 100_000.0, "head mass {head}");
    }

    #[test]
    fn uniform_in_range() {
        let d = Uniform::new(-2.0, 3.0);
        let mut rng = SimRng::new(7);
        for _ in 0..10_000 {
            let x = d.sample(&mut rng);
            assert!((-2.0..3.0).contains(&x));
        }
    }
}
