//! The event calendar driving every simulation.
//!
//! [`EventQueue`] is a priority queue of `(time, event)` pairs. Ties on time
//! are broken by insertion order (a monotonically increasing sequence
//! number), which makes every simulation fully deterministic: two runs with
//! the same seed schedule and pop events in exactly the same order.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::{Duration, SimTime};

/// Token identifying a scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u64);

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap but we pop the earliest event.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic discrete-event calendar with a virtual clock.
///
/// The queue owns the simulation clock: [`EventQueue::pop`] advances `now`
/// to the timestamp of the event it returns. Scheduling an event in the past
/// is a logic error and panics in debug builds; in release builds it is
/// clamped to `now` to keep time monotonic.
///
/// # Examples
///
/// ```
/// use mitt_sim::{Duration, EventQueue};
///
/// let mut q = EventQueue::new();
/// q.schedule_in(Duration::from_millis(2), "b");
/// q.schedule_in(Duration::from_millis(1), "a");
/// assert_eq!(q.pop().unwrap().1, "a");
/// assert_eq!(q.now().as_millis(), 1);
/// assert_eq!(q.pop().unwrap().1, "b");
/// assert!(q.pop().is_none());
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    now: SimTime,
    seq: u64,
    cancelled: std::collections::HashSet<u64>,
    popped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty calendar with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            now: SimTime::ZERO,
            seq: 0,
            cancelled: std::collections::HashSet::new(),
            popped: 0,
        }
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at absolute time `at` and returns a cancellation
    /// token.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `at` is earlier than the current time.
    pub fn schedule(&mut self, at: SimTime, event: E) -> EventId {
        debug_assert!(
            at >= self.now,
            "scheduled event in the past: at={at} now={}",
            self.now
        );
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at, seq, event });
        EventId(seq)
    }

    /// Schedules `event` after `delay` from the current time.
    pub fn schedule_in(&mut self, delay: Duration, event: E) -> EventId {
        let at = self.now + delay;
        self.schedule(at, event)
    }

    /// Cancels a previously scheduled event.
    ///
    /// Cancellation is lazy: the entry stays in the heap and is skipped when
    /// reached. Cancelling an already-fired or unknown id is a no-op.
    pub fn cancel(&mut self, id: EventId) {
        self.cancelled.insert(id.0);
    }

    /// Removes and returns the earliest live event, advancing the clock to
    /// its timestamp. Returns `None` when the calendar is exhausted.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            if self.cancelled.remove(&entry.seq) {
                continue;
            }
            self.now = entry.at;
            self.popped += 1;
            return Some((entry.at, entry.event));
        }
        None
    }

    /// The timestamp of the next live event without popping it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(entry) = self.heap.peek() {
            if self.cancelled.contains(&entry.seq) {
                let seq = entry.seq;
                self.heap.pop();
                self.cancelled.remove(&seq);
                continue;
            }
            return Some(entry.at);
        }
        None
    }

    /// True if no live events remain.
    pub fn is_empty(&mut self) -> bool {
        self.peek_time().is_none()
    }

    /// Number of entries currently in the heap, including lazily cancelled
    /// ones. Useful only as a rough size signal.
    pub fn raw_len(&self) -> usize {
        self.heap.len()
    }

    /// Total number of events delivered so far.
    pub fn events_delivered(&self) -> u64 {
        self.popped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(30), 3);
        q.schedule(SimTime::from_nanos(10), 1);
        q.schedule(SimTime::from_nanos(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
        assert_eq!(q.events_delivered(), 3);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule_in(Duration::from_millis(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now().as_millis(), 7);
    }

    #[test]
    fn cancellation_skips_events() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_nanos(1), "a");
        q.schedule(SimTime::from_nanos(2), "b");
        q.cancel(a);
        assert_eq!(q.pop().unwrap().1, "b");
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_nanos(1), "a");
        assert_eq!(q.pop().unwrap().1, "a");
        q.cancel(a);
        q.schedule(SimTime::from_nanos(2), "b");
        assert_eq!(q.pop().unwrap().1, "b");
    }

    #[test]
    fn peek_skips_cancelled_and_reports_next_time() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_nanos(1), "a");
        q.schedule(SimTime::from_nanos(9), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(9)));
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
    }
}
