//! Property-based tests for the simulation core.

#![cfg(feature = "props")]
// Gated: `proptest` is a crates.io dependency, unavailable offline.
// See the root Cargo.toml note to re-enable.

use proptest::prelude::*;

use mitt_sim::{Duration, EventQueue, LatencyRecorder, SimRng, SimTime};

proptest! {
    /// Events always pop in nondecreasing time order, regardless of the
    /// schedule order.
    #[test]
    fn event_queue_pops_in_time_order(times in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_nanos(t), i);
        }
        let mut last = SimTime::ZERO;
        let mut count = 0;
        while let Some((at, _)) = q.pop() {
            prop_assert!(at >= last);
            last = at;
            count += 1;
        }
        prop_assert_eq!(count, times.len());
    }

    /// Equal-time events preserve insertion order (determinism).
    #[test]
    fn event_queue_is_fifo_within_a_timestamp(n in 1usize..100) {
        let mut q = EventQueue::new();
        for i in 0..n {
            q.schedule(SimTime::from_nanos(42), i);
        }
        let popped: Vec<usize> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        prop_assert_eq!(popped, (0..n).collect::<Vec<_>>());
    }

    /// Cancelling an arbitrary subset never delivers a cancelled event and
    /// always delivers the rest.
    #[test]
    fn cancellation_is_exact(
        times in prop::collection::vec(0u64..10_000, 1..100),
        cancel_mask in prop::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut q = EventQueue::new();
        let ids: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| q.schedule(SimTime::from_nanos(t), i))
            .collect();
        let mut cancelled = Vec::new();
        for (i, id) in ids.iter().enumerate() {
            if *cancel_mask.get(i).unwrap_or(&false) {
                q.cancel(*id);
                cancelled.push(i);
            }
        }
        let mut delivered = Vec::new();
        while let Some((_, e)) = q.pop() {
            delivered.push(e);
        }
        for c in &cancelled {
            prop_assert!(!delivered.contains(c));
        }
        prop_assert_eq!(delivered.len() + cancelled.len(), times.len());
    }

    /// Quantiles are monotone in q and bounded by min/max.
    #[test]
    fn quantiles_are_monotone(samples in prop::collection::vec(0u64..10_000_000, 2..300)) {
        let mut rec = LatencyRecorder::new();
        for &s in &samples {
            rec.record(Duration::from_nanos(s));
        }
        let qs = [0.0, 0.1, 0.5, 0.9, 0.95, 0.99, 1.0];
        let values: Vec<Duration> = qs.iter().map(|&q| rec.quantile(q)).collect();
        for w in values.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
        prop_assert_eq!(values[0], rec.min());
        prop_assert_eq!(*values.last().unwrap(), rec.max());
    }

    /// The mean lies between min and max.
    #[test]
    fn mean_is_bounded(samples in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut rec = LatencyRecorder::new();
        for &s in &samples {
            rec.record(Duration::from_nanos(s));
        }
        let mean = rec.mean();
        prop_assert!(rec.min() <= mean && mean <= rec.max());
    }

    /// range_u64 always lands inside its bounds.
    #[test]
    fn rng_range_in_bounds(seed in any::<u64>(), lo in 0u64..1000, span in 1u64..1000) {
        let mut rng = SimRng::new(seed);
        for _ in 0..100 {
            let x = rng.range_u64(lo, lo + span);
            prop_assert!((lo..lo + span).contains(&x));
        }
    }

    /// Forked streams never produce the parent's next outputs.
    #[test]
    fn fork_does_not_alias_parent(seed in any::<u64>()) {
        let mut parent = SimRng::new(seed);
        let mut probe = parent.clone();
        let mut child = parent.fork();
        // `probe` replays what the parent *would* have produced without
        // the fork; the child's stream must diverge from it.
        let same = (0..32).filter(|_| probe.next_u64() == child.next_u64()).count();
        prop_assert!(same < 4, "child aliases parent stream");
    }

    /// Duration arithmetic: (a + b) - b == a.
    #[test]
    fn duration_add_sub_roundtrip(a in 0u64..u32::MAX as u64, b in 0u64..u32::MAX as u64) {
        let da = Duration::from_nanos(a);
        let db = Duration::from_nanos(b);
        prop_assert_eq!((da + db) - db, da);
        prop_assert_eq!((SimTime::ZERO + da + db) - db, SimTime::ZERO + da);
    }
}
