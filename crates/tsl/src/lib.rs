//! mitt-tsl — windowed tail-latency timelines, SLO burn-rate alerting, and
//! an alert-triggered flight recorder.
//!
//! Every report the workspace emitted before this crate (mitt-obs
//! `BenchReport`, mitt-prof, `fig_chaos`) is an end-of-run aggregate: noise
//! windows open, predictors adapt, breakers trip, and the transient that
//! explains the tail is averaged away. mitt-tsl keeps the *time axis*: the
//! virtual clock is sliced into fixed-width windows (default 100 ms of
//! sim-time) and every per-get latency, EBUSY reply, predictor verdict,
//! dispatch, device service time, and breaker transition is bucketed into
//! the window it happened in, keyed by `(strategy, node, resource)`. Each
//! window rolls up into p50/p95/p99/p999, an EBUSY rate, per-resource
//! reject counts, breaker activity, and an **SLO burn rate** — the ratio of
//! the observed deadline-miss rate to the run's error budget, evaluated
//! over a short *fast* span and a long *slow* span exactly like SRE
//! multi-window burn alerting. When a burn alert (or a
//! `mitt_faults::invariants` near-miss, fed in by the harness) fires, a
//! bounded flight recorder snapshots the tail of the trace ring plus the
//! current attribution and breaker state into a byte-stable dump for
//! post-mortem.
//!
//! Determinism contract (the part that lets the export fold into the run
//! digest): the sink is driven **only** by the virtual clock, consumes no
//! RNG, schedules no events, and every rollup happens inline at the emit
//! site — enabling it cannot perturb the simulation, so the trace digest of
//! a run is identical with tsl on or off, while the `mitt-tsl/v1` export
//! itself is byte-identical across same-seed runs. All arithmetic is
//! integer (ppm / milli-units); there is no float anywhere in the crate.
//!
//! Like [`mitt_trace::TraceSink`], a [`TslSink`] is a cheap clonable handle
//! over a shared collector: a disabled sink is one branch per call and
//! allocates nothing, and [`TslSink::for_node`] re-tags a handle so every
//! layer of the stack records under its own node id.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use mitt_sim::{Duration, Fnv1a, SimTime};
use mitt_trace::{Resource, TraceEvent, CLUSTER_NODE};

/// Tuning for one run's timeline collection and burn-rate alerting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TslConfig {
    /// Width of one timeline window in sim-time.
    pub window: Duration,
    /// The SLO deadline a get must beat to not consume error budget. When
    /// left at `Duration::ZERO` the cluster sim substitutes the strategy's
    /// own deadline (or 20 ms for deadline-less strategies) so Base and
    /// MittOS runs are judged against the same SLO.
    pub deadline: Duration,
    /// Error budget as the allowed deadline-miss fraction, in parts per
    /// million (10 000 ppm = 1 % of gets may miss).
    pub slo_budget_ppm: u64,
    /// Number of trailing windows in the fast-burn span.
    pub fast_windows: u64,
    /// Fast-burn alert threshold in milli-multiples of the budget rate
    /// (14 000 = burning budget 14x faster than allowed).
    pub fast_threshold_milli: u64,
    /// Number of trailing windows in the slow-burn span.
    pub slow_windows: u64,
    /// Slow-burn alert threshold in milli-multiples of the budget rate.
    pub slow_threshold_milli: u64,
    /// Maximum flight-recorder dumps captured per run.
    pub flight_capacity: usize,
    /// Trace-ring events snapshotted into each flight dump (tail of ring).
    pub flight_events: usize,
}

impl Default for TslConfig {
    /// 100 ms windows, 1 % error budget, 14x/3-window fast burn and
    /// 6x/12-window slow burn (the classic SRE multi-window pairing),
    /// 8 dumps of 256 events each.
    fn default() -> Self {
        TslConfig {
            window: Duration::from_millis(100),
            deadline: Duration::ZERO,
            slo_budget_ppm: 10_000,
            fast_windows: 3,
            fast_threshold_milli: 14_000,
            slow_windows: 12,
            slow_threshold_milli: 6_000,
            flight_capacity: 8,
            flight_events: 256,
        }
    }
}

/// A pow2-bucket latency histogram with integer quantiles.
///
/// Same shape as mitt-prof's histogram (64 buckets, bucket `i` covering
/// `[2^i, 2^(i+1))` ns) but quantiles are taken at integer milli-quantiles
/// (`q_milli` = 990 for p99) so rollups never touch a float.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WinHist {
    counts: [u64; 64],
    total: u64,
}

impl Default for WinHist {
    fn default() -> Self {
        WinHist {
            counts: [0; 64],
            total: 0,
        }
    }
}

impl WinHist {
    /// Records one sample of `ns` nanoseconds.
    pub fn observe(&mut self, ns: u64) {
        let idx = 63 - ns.max(1).leading_zeros() as usize;
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Total samples recorded.
    pub const fn total(&self) -> u64 {
        self.total
    }

    /// The upper bound (ns) of the bucket holding the `q_milli`/1000
    /// quantile (990 = p99, 999 = p99.9); 0 when empty.
    pub fn quantile_ns(&self, q_milli: u64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((self.total as u128 * q_milli as u128).div_ceil(1000)).max(1) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return 1u64 << (i + 1).min(63);
            }
        }
        1u64 << 63
    }

    /// Folds the histogram (sparse: only non-empty buckets) into a digest.
    pub fn fold(&self, h: &mut Fnv1a) {
        h.write_u64(self.total);
        for (i, &c) in self.counts.iter().enumerate() {
            if c > 0 {
                h.write_u64(i as u64);
                h.write_u64(c);
            }
        }
    }
}

/// Everything recorded into one `(node, window)` cell of the timeline.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WindowStats {
    /// Cluster-level get completions observed in the window.
    pub gets: u64,
    /// Gets whose end-to-end latency exceeded the SLO deadline.
    pub misses: u64,
    /// EBUSY replies the cluster driver saw in the window.
    pub ebusy: u64,
    /// Predictor admissions recorded at this node.
    pub admits: u64,
    /// Predictor rejections recorded at this node.
    pub rejects: u64,
    /// Rejections/EBUSYs by blamed [`Resource`], indexed by `code()`.
    pub rejects_by_resource: [u64; 8],
    /// Scheduler dispatches recorded at this node.
    pub dispatches: u64,
    /// Device completions recorded at this node.
    pub completes: u64,
    /// Breaker transitions into `Open` landing in this window.
    pub breaker_opens: u64,
    /// Breaker transitions into `Closed` landing in this window.
    pub breaker_closes: u64,
    /// End-to-end get latency histogram (cluster rows).
    pub latency: WinHist,
    /// Device service-time histogram (node rows).
    pub service: WinHist,
}

impl WindowStats {
    fn fold(&self, h: &mut Fnv1a) {
        h.write_u64(self.gets);
        h.write_u64(self.misses);
        h.write_u64(self.ebusy);
        h.write_u64(self.admits);
        h.write_u64(self.rejects);
        h.write_u64_slice(&self.rejects_by_resource);
        h.write_u64(self.dispatches);
        h.write_u64(self.completes);
        h.write_u64(self.breaker_opens);
        h.write_u64(self.breaker_closes);
        self.latency.fold(h);
        self.service.fold(h);
    }
}

/// Which burn span tripped an alert.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertKind {
    /// The short span crossed `fast_threshold_milli` (page-now severity).
    FastBurn,
    /// The long span crossed `slow_threshold_milli` (ticket severity).
    SlowBurn,
}

impl AlertKind {
    /// Stable name used in exports and trailer lines.
    pub const fn name(self) -> &'static str {
        match self {
            AlertKind::FastBurn => "fast_burn",
            AlertKind::SlowBurn => "slow_burn",
        }
    }

    /// Stable numeric code, folded into digests.
    pub const fn code(self) -> u64 {
        match self {
            AlertKind::FastBurn => 0,
            AlertKind::SlowBurn => 1,
        }
    }
}

/// One burn-rate alert onset. Alerts are edge-triggered: an entry is
/// recorded when the condition becomes true at a window close and not again
/// until it has first become false.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TslAlert {
    /// Fast or slow span.
    pub kind: AlertKind,
    /// Index of the window whose close tripped the alert.
    pub window: u64,
    /// Virtual time of that window's end.
    pub at: SimTime,
    /// Burn rate over the span at trigger time, in milli-multiples of the
    /// budget rate.
    pub burn_milli: u64,
}

impl TslAlert {
    /// The sim-time interval `[start, end)` covered by the alert's span.
    pub fn span(&self, cfg: &TslConfig) -> (SimTime, SimTime) {
        let width = cfg.window.as_nanos();
        let windows = match self.kind {
            AlertKind::FastBurn => cfg.fast_windows,
            AlertKind::SlowBurn => cfg.slow_windows,
        };
        let end = (self.window + 1) * width;
        let start = end.saturating_sub(windows * width);
        (SimTime::from_nanos(start), SimTime::from_nanos(end))
    }
}

/// An invariant that passed but came close to its budget (fed in from
/// `mitt_faults::invariants` by the harness; ROADMAP item 5's coverage
/// signal for the fault-plan generator).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NearMiss {
    /// Name of the invariant that nearly failed.
    pub invariant: &'static str,
    /// Slack that remained (budget minus observed worst case).
    pub margin: Duration,
    /// The budget the invariant was checked against.
    pub budget: Duration,
}

impl NearMiss {
    /// True when the margin is under a quarter of the budget — the
    /// threshold at which recording one also arms the flight recorder.
    pub fn is_close(&self) -> bool {
        self.margin.as_nanos() * 4 < self.budget.as_nanos()
    }
}

/// One flight-recorder dump: the trace-ring tail plus attribution and
/// breaker state at the moment an alert (or near-miss) fired.
#[derive(Debug, Clone)]
pub struct FlightDump {
    /// Dump id (0-based capture order).
    pub id: u64,
    /// What armed the recorder (`fast_burn`, `slow_burn`, `near_miss`).
    pub trigger: &'static str,
    /// Virtual time of the snapshot.
    pub at: SimTime,
    /// Tail of the trace ring at snapshot time (bounded by
    /// [`TslConfig::flight_events`]).
    pub events: Vec<TraceEvent>,
    /// Per-replica breaker state codes as `(node, BreakerState::code())`.
    pub breakers: Vec<(u32, u64)>,
    /// Cumulative rejects/EBUSYs by resource code at snapshot time.
    pub rejects: [u64; 8],
    /// Cumulative EBUSY replies at snapshot time.
    pub ebusy: u64,
    /// Cumulative gets at snapshot time.
    pub gets: u64,
    /// Cumulative SLO misses at snapshot time.
    pub misses: u64,
}

impl FlightDump {
    fn fold(&self, h: &mut Fnv1a) {
        h.write_u64(self.id);
        h.write_str(self.trigger);
        h.write_u64(self.at.as_nanos());
        h.write_u64(self.events.len() as u64);
        for ev in &self.events {
            ev.fold(h);
        }
        for &(node, state) in &self.breakers {
            h.write_u64(u64::from(node));
            h.write_u64(state);
        }
        h.write_u64_slice(&self.rejects);
        h.write_u64(self.ebusy);
        h.write_u64(self.gets);
        h.write_u64(self.misses);
    }

    /// FNV-1a digest of the whole dump, as printed in the export index.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv1a::new();
        self.fold(&mut h);
        h.finish()
    }

    /// Renders the dump as a byte-stable `mitt-tsl-flight/v1` JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096 + self.events.len() * 96);
        out.push_str("{\"schema\":\"mitt-tsl-flight/v1\"");
        out.push_str(&format!(",\"id\":{}", self.id));
        out.push_str(&format!(",\"trigger\":\"{}\"", self.trigger));
        out.push_str(&format!(",\"at_us\":{}", self.at.as_micros()));
        out.push_str(&format!(",\"gets\":{}", self.gets));
        out.push_str(&format!(",\"misses\":{}", self.misses));
        out.push_str(&format!(",\"ebusy\":{}", self.ebusy));
        out.push_str(",\"rejects\":{");
        let mut first = true;
        for r in Resource::ALL {
            let n = self.rejects[r.code() as usize];
            if n > 0 {
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str(&format!("\"{}\":{}", r.name(), n));
            }
        }
        out.push_str("},\"breakers\":[");
        for (i, &(node, state)) in self.breakers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{{\"node\":{node},\"state\":{state}}}"));
        }
        out.push_str("],\"events\":[");
        for (i, ev) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let mut f = Fnv1a::new();
            ev.kind.fold(&mut f);
            out.push_str(&format!(
                "{{\"at_ns\":{},\"node\":{},\"sub\":\"{}\",\"kind\":\"{}\",\"fold\":\"{:#018x}\"}}",
                ev.at.as_nanos(),
                ev.node,
                ev.subsystem.name(),
                ev.kind.name(),
                f.finish()
            ));
        }
        out.push_str("]}");
        out
    }
}

/// Burn rate in milli-multiples of the budget rate: 1000 means the miss
/// rate exactly equals the budget rate; 14 000 means budget is being burned
/// 14x faster than allowed.
fn burn_milli(misses: u64, gets: u64, budget_ppm: u64) -> u64 {
    if gets == 0 || budget_ppm == 0 {
        return 0;
    }
    (misses as u128 * 1_000_000_000u128 / (gets as u128 * budget_ppm as u128)) as u64
}

/// The shared timeline collector behind every [`TslSink`] handle.
#[derive(Debug)]
struct TslCore {
    cfg: TslConfig,
    strategy: String,
    /// Timeline cells keyed `(node, window index)`; [`CLUSTER_NODE`] rows
    /// hold the cluster-level gets/misses/EBUSY the burn rate reads.
    windows: BTreeMap<(u32, u64), WindowStats>,
    /// Windows strictly below this index have been closed and evaluated.
    closed_through: u64,
    alerts: Vec<TslAlert>,
    fast_active: bool,
    slow_active: bool,
    near_misses: Vec<NearMiss>,
    dumps: Vec<FlightDump>,
    /// Triggers fired but not yet snapshotted (drained by the owner via
    /// `wants_flight` / `flight_record`).
    pending_triggers: Vec<&'static str>,
    cum_rejects: [u64; 8],
    cum_ebusy: u64,
    cum_gets: u64,
    cum_misses: u64,
    finished: bool,
}

impl TslCore {
    fn window_of(&self, at: SimTime) -> u64 {
        at.as_nanos() / self.cfg.window.as_nanos().max(1)
    }

    fn cell(&mut self, node: u32, at: SimTime) -> &mut WindowStats {
        let w = self.window_of(at);
        self.windows.entry((node, w)).or_default()
    }

    /// Sums `(gets, misses)` over cluster windows `[lo, hi]` inclusive.
    fn span_totals(&self, lo: u64, hi: u64) -> (u64, u64) {
        let mut gets = 0;
        let mut misses = 0;
        for w in lo..=hi {
            if let Some(s) = self.windows.get(&(CLUSTER_NODE, w)) {
                gets += s.gets;
                misses += s.misses;
            }
        }
        (gets, misses)
    }

    fn span_burn(&self, hi: u64, span: u64) -> u64 {
        let lo = (hi + 1).saturating_sub(span.max(1));
        let (gets, misses) = self.span_totals(lo, hi);
        burn_milli(misses, gets, self.cfg.slo_budget_ppm)
    }

    /// Closes every window strictly before the one containing `now`,
    /// evaluating burn alerts edge-triggered at each close.
    fn advance_to(&mut self, now: SimTime) {
        let open = self.window_of(now);
        while self.closed_through < open {
            let w = self.closed_through;
            self.evaluate_window(w);
            self.closed_through += 1;
        }
    }

    fn evaluate_window(&mut self, w: u64) {
        let cfg = self.cfg;
        let gate = self.span_burn(w, 1);
        let fast = self.span_burn(w, cfg.fast_windows);
        let fast_now = fast >= cfg.fast_threshold_milli && gate >= cfg.fast_threshold_milli;
        if fast_now && !self.fast_active {
            self.push_alert(AlertKind::FastBurn, w, fast);
        }
        self.fast_active = fast_now;

        let fast_gate = self.span_burn(w, cfg.fast_windows);
        let slow = self.span_burn(w, cfg.slow_windows);
        let slow_now = slow >= cfg.slow_threshold_milli && fast_gate >= cfg.slow_threshold_milli;
        if slow_now && !self.slow_active {
            self.push_alert(AlertKind::SlowBurn, w, slow);
        }
        self.slow_active = slow_now;
    }

    fn push_alert(&mut self, kind: AlertKind, w: u64, burn: u64) {
        let at = SimTime::from_nanos((w + 1) * self.cfg.window.as_nanos());
        self.alerts.push(TslAlert {
            kind,
            window: w,
            at,
            burn_milli: burn,
        });
        if self.dumps.len() + self.pending_triggers.len() < self.cfg.flight_capacity {
            self.pending_triggers.push(kind.name());
        }
    }
}

/// A cheap clonable handle to a shared timeline collector, mirroring
/// [`mitt_trace::TraceSink`]: disabled by default (one branch per call, no
/// allocation), enabled per run, node-tagged via [`TslSink::for_node`].
#[derive(Debug, Clone, Default)]
pub struct TslSink {
    core: Option<Rc<RefCell<TslCore>>>,
    node: u32,
}

impl TslSink {
    /// A sink that drops everything (the default).
    pub fn disabled() -> Self {
        TslSink {
            core: None,
            node: CLUSTER_NODE,
        }
    }

    /// A live sink collecting under `cfg` for a run labelled `strategy`.
    pub fn enabled(cfg: TslConfig, strategy: &str) -> Self {
        TslSink {
            core: Some(Rc::new(RefCell::new(TslCore {
                cfg,
                strategy: strategy.to_string(),
                windows: BTreeMap::new(),
                closed_through: 0,
                alerts: Vec::new(),
                fast_active: false,
                slow_active: false,
                near_misses: Vec::new(),
                dumps: Vec::new(),
                pending_triggers: Vec::new(),
                cum_rejects: [0; 8],
                cum_ebusy: 0,
                cum_gets: 0,
                cum_misses: 0,
                finished: false,
            }))),
            node: CLUSTER_NODE,
        }
    }

    /// True when samples are being collected.
    pub fn is_enabled(&self) -> bool {
        self.core.is_some()
    }

    /// A handle to the same collector tagged with `node`.
    pub fn for_node(&self, node: u32) -> Self {
        TslSink {
            core: self.core.clone(),
            node,
        }
    }

    /// The node tag recorded with this handle's samples.
    pub fn node(&self) -> u32 {
        self.node
    }

    /// The active config, if enabled.
    pub fn config(&self) -> Option<TslConfig> {
        self.core.as_ref().map(|c| c.borrow().cfg)
    }

    /// Records one completed cluster get: bumps the window's get count,
    /// latency histogram, and — when `latency` blows the SLO deadline —
    /// its miss count. Cluster-row only; call on the cluster-tagged handle.
    pub fn observe_get(&self, at: SimTime, latency: Duration) {
        if let Some(core) = &self.core {
            let mut core = core.borrow_mut();
            let miss = latency > core.cfg.deadline;
            core.cum_gets += 1;
            if miss {
                core.cum_misses += 1;
            }
            let cell = self.cell_for(&mut core, at);
            cell.gets += 1;
            if miss {
                cell.misses += 1;
            }
            cell.latency.observe(latency.as_nanos());
        }
    }

    /// Records one EBUSY reply blamed on `resource` (cluster handle).
    pub fn record_ebusy(&self, at: SimTime, resource: Resource) {
        if let Some(core) = &self.core {
            let mut core = core.borrow_mut();
            core.cum_ebusy += 1;
            core.cum_rejects[resource.code() as usize] += 1;
            let cell = self.cell_for(&mut core, at);
            cell.ebusy += 1;
            cell.rejects_by_resource[resource.code() as usize] += 1;
        }
    }

    /// Records one predictor admission at this handle's node.
    pub fn record_admit(&self, at: SimTime) {
        if let Some(core) = &self.core {
            let mut core = core.borrow_mut();
            self.cell_for(&mut core, at).admits += 1;
        }
    }

    /// Records one predictor rejection blamed on `resource` at this
    /// handle's node.
    pub fn record_reject(&self, at: SimTime, resource: Resource) {
        if let Some(core) = &self.core {
            let mut core = core.borrow_mut();
            core.cum_rejects[resource.code() as usize] += 1;
            let cell = self.cell_for(&mut core, at);
            cell.rejects += 1;
            cell.rejects_by_resource[resource.code() as usize] += 1;
        }
    }

    /// Records one scheduler dispatch at this handle's node.
    pub fn record_dispatch(&self, at: SimTime) {
        if let Some(core) = &self.core {
            let mut core = core.borrow_mut();
            self.cell_for(&mut core, at).dispatches += 1;
        }
    }

    /// Records one device completion with its service time at this
    /// handle's node.
    pub fn observe_service(&self, at: SimTime, service: Duration) {
        if let Some(core) = &self.core {
            let mut core = core.borrow_mut();
            let cell = self.cell_for(&mut core, at);
            cell.completes += 1;
            cell.service.observe(service.as_nanos());
        }
    }

    /// Records a breaker state change for `node` (state codes from
    /// `BreakerState::code()`: 0 Closed, 1 Open, 2 HalfOpen). Opens and
    /// closes are bucketed into the window containing `at` on both the
    /// node's row and the cluster row.
    pub fn record_breaker_transition(&self, node: u32, at: SimTime, to_code: u64) {
        if let Some(core) = &self.core {
            let mut core = core.borrow_mut();
            for row in [node, CLUSTER_NODE] {
                let w = core.window_of(at);
                let cell = core.windows.entry((row, w)).or_default();
                if to_code == 1 {
                    cell.breaker_opens += 1;
                } else if to_code == 0 {
                    cell.breaker_closes += 1;
                }
            }
        }
    }

    /// Records an invariant near-miss (see [`NearMiss`]); a close one
    /// ([`NearMiss::is_close`]) also arms the flight recorder.
    pub fn record_near_miss(&self, nm: NearMiss) {
        if let Some(core) = &self.core {
            let mut core = core.borrow_mut();
            if nm.is_close()
                && core.dumps.len() + core.pending_triggers.len() < core.cfg.flight_capacity
            {
                core.pending_triggers.push("near_miss");
            }
            core.near_misses.push(nm);
        }
    }

    /// Advances the window clock to `now`, closing and evaluating every
    /// window that ended before it. Returns true when the evaluation fired
    /// an alert that still needs a flight-recorder snapshot (the caller
    /// should follow up with [`TslSink::flight_record`]).
    pub fn tick(&self, now: SimTime) -> bool {
        match &self.core {
            Some(core) => {
                let mut core = core.borrow_mut();
                core.advance_to(now);
                !core.pending_triggers.is_empty()
            }
            None => false,
        }
    }

    /// True when an alert or near-miss has armed the recorder and capacity
    /// remains for a snapshot.
    pub fn wants_flight(&self) -> bool {
        self.core
            .as_ref()
            .is_some_and(|c| !c.borrow().pending_triggers.is_empty())
    }

    /// Captures one flight dump for all pending triggers: `events` is the
    /// trace-ring tail (the sink truncates it to the configured bound),
    /// `breakers` the per-replica breaker state codes at snapshot time.
    pub fn flight_record(&self, events: Vec<TraceEvent>, breakers: Vec<(u32, u64)>, now: SimTime) {
        if let Some(core) = &self.core {
            let mut core = core.borrow_mut();
            if core.pending_triggers.is_empty() || core.dumps.len() >= core.cfg.flight_capacity {
                core.pending_triggers.clear();
                return;
            }
            let trigger = core.pending_triggers[0];
            core.pending_triggers.clear();
            let keep = core.cfg.flight_events;
            let skip = events.len().saturating_sub(keep);
            let dump = FlightDump {
                id: core.dumps.len() as u64,
                trigger,
                at: now,
                events: events.into_iter().skip(skip).collect(),
                breakers,
                rejects: core.cum_rejects,
                ebusy: core.cum_ebusy,
                gets: core.cum_gets,
                misses: core.cum_misses,
            };
            core.dumps.push(dump);
        }
    }

    /// Closes all windows through `run_end` and evaluates the final one.
    /// Idempotent; call once when the run drains.
    pub fn finish(&self, run_end: SimTime) {
        if let Some(core) = &self.core {
            let mut core = core.borrow_mut();
            if core.finished {
                return;
            }
            // Close everything up to and *including* the window containing
            // the run's end, so a tail burst in the final partial window
            // still evaluates.
            let last = core.window_of(run_end);
            while core.closed_through <= last {
                let w = core.closed_through;
                core.evaluate_window(w);
                core.closed_through += 1;
            }
            core.finished = true;
        }
    }

    /// All recorded alerts in trigger order.
    pub fn alerts(&self) -> Vec<TslAlert> {
        self.core
            .as_ref()
            .map(|c| c.borrow().alerts.clone())
            .unwrap_or_default()
    }

    /// Number of fast-burn alert onsets.
    pub fn fast_burn_alerts(&self) -> u64 {
        self.alerts()
            .iter()
            .filter(|a| a.kind == AlertKind::FastBurn)
            .count() as u64
    }

    /// All recorded invariant near-misses.
    pub fn near_misses(&self) -> Vec<NearMiss> {
        self.core
            .as_ref()
            .map(|c| c.borrow().near_misses.clone())
            .unwrap_or_default()
    }

    /// All captured flight dumps.
    pub fn flight_dumps(&self) -> Vec<FlightDump> {
        self.core
            .as_ref()
            .map(|c| c.borrow().dumps.clone())
            .unwrap_or_default()
    }

    /// The stats cell for `(self.node, window containing at)`.
    fn cell_for<'a>(&self, core: &'a mut TslCore, at: SimTime) -> &'a mut WindowStats {
        core.cell(self.node, at)
    }

    /// Synthesizes Chrome counter-track events (`tsl.p99_us`,
    /// `tsl.burn_milli`) at each cluster window's end, for merging into a
    /// trace export so alerts are visible next to Fault/Gray spans.
    pub fn counter_events(&self) -> Vec<TraceEvent> {
        use mitt_trace::{EventKind, Subsystem};
        let core = match &self.core {
            Some(c) => c.borrow(),
            None => return Vec::new(),
        };
        let width = core.cfg.window.as_nanos();
        let mut out = Vec::new();
        for (&(node, w), stats) in &core.windows {
            if node != CLUSTER_NODE {
                continue;
            }
            let at = SimTime::from_nanos((w + 1) * width);
            out.push(TraceEvent {
                at,
                node: CLUSTER_NODE,
                subsystem: Subsystem::Cluster,
                kind: EventKind::Counter {
                    name: "tsl.p99_us",
                    value: stats.latency.quantile_ns(990) / 1_000,
                },
            });
            out.push(TraceEvent {
                at,
                node: CLUSTER_NODE,
                subsystem: Subsystem::Cluster,
                kind: EventKind::Counter {
                    name: "tsl.burn_milli",
                    value: burn_milli(stats.misses, stats.gets, core.cfg.slo_budget_ppm),
                },
            });
        }
        out
    }

    /// Folds the whole timeline state into a run digest. A disabled sink
    /// folds a `0` marker; an enabled one folds config, every window cell,
    /// alerts, near-misses, and flight-dump digests — so same-seed runs
    /// must produce bit-identical timelines.
    pub fn fold_digest(&self, h: &mut Fnv1a) {
        let core = match &self.core {
            Some(c) => c.borrow(),
            None => {
                h.write_u64(0);
                return;
            }
        };
        h.write_u64(1);
        h.write_str(&core.strategy);
        h.write_u64(core.cfg.window.as_nanos());
        h.write_u64(core.cfg.deadline.as_nanos());
        h.write_u64(core.cfg.slo_budget_ppm);
        h.write_u64(core.cfg.fast_windows);
        h.write_u64(core.cfg.fast_threshold_milli);
        h.write_u64(core.cfg.slow_windows);
        h.write_u64(core.cfg.slow_threshold_milli);
        h.write_u64(core.windows.len() as u64);
        for (&(node, w), stats) in &core.windows {
            h.write_u64(u64::from(node));
            h.write_u64(w);
            stats.fold(h);
        }
        h.write_u64(core.alerts.len() as u64);
        for a in &core.alerts {
            h.write_u64(a.kind.code());
            h.write_u64(a.window);
            h.write_u64(a.at.as_nanos());
            h.write_u64(a.burn_milli);
        }
        h.write_u64(core.near_misses.len() as u64);
        for nm in &core.near_misses {
            h.write_str(nm.invariant);
            h.write_u64(nm.margin.as_nanos());
            h.write_u64(nm.budget.as_nanos());
        }
        h.write_u64(core.dumps.len() as u64);
        for d in &core.dumps {
            d.fold(h);
        }
    }

    /// Renders the `mitt-tsl/v1` export: fixed field order, integer-only
    /// values, byte-identical across same-seed runs.
    pub fn export_json(&self) -> String {
        self.export_json_with_bench(None)
    }

    /// [`TslSink::export_json`] with an embedded pre-rendered
    /// `mitt-bench/v1` document as a trailing `"bench"` section, so
    /// `mitt-obs compare` can gate a timeline export directly against a
    /// committed bench baseline.
    pub fn export_json_with_bench(&self, bench_json: Option<&str>) -> String {
        let core = match &self.core {
            Some(c) => c.borrow(),
            None => return String::from("{\"schema\":\"mitt-tsl/v1\",\"enabled\":false}"),
        };
        let cfg = core.cfg;
        let width = cfg.window.as_nanos();
        let mut out = String::with_capacity(16 * 1024);
        out.push_str("{\"schema\":\"mitt-tsl/v1\"");
        out.push_str(&format!(",\"strategy\":\"{}\"", core.strategy));
        out.push_str(&format!(",\"window_us\":{}", cfg.window.as_micros()));
        out.push_str(&format!(",\"deadline_us\":{}", cfg.deadline.as_micros()));
        out.push_str(&format!(",\"slo_budget_ppm\":{}", cfg.slo_budget_ppm));
        out.push_str(&format!(
            ",\"fast_burn\":{{\"windows\":{},\"threshold_milli\":{}}}",
            cfg.fast_windows, cfg.fast_threshold_milli
        ));
        out.push_str(&format!(
            ",\"slow_burn\":{{\"windows\":{},\"threshold_milli\":{}}}",
            cfg.slow_windows, cfg.slow_threshold_milli
        ));

        // Timelines: cluster row first, then per-node rows in node order.
        let mut nodes: Vec<u32> = Vec::new();
        for &(node, _) in core.windows.keys() {
            if !nodes.contains(&node) {
                nodes.push(node);
            }
        }
        nodes.sort_unstable();
        // BTreeMap order puts CLUSTER_NODE (u32::MAX) last; surface it first.
        if let Some(pos) = nodes.iter().position(|&n| n == CLUSTER_NODE) {
            nodes.remove(pos);
            nodes.insert(0, CLUSTER_NODE);
        }
        out.push_str(",\"timelines\":[");
        for (ni, &node) in nodes.iter().enumerate() {
            if ni > 0 {
                out.push(',');
            }
            out.push_str(&format!("{{\"node\":{node},\"windows\":["));
            let mut first = true;
            for (&(n, w), s) in &core.windows {
                if n != node {
                    continue;
                }
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str(&format!("{{\"w\":{w},\"start_us\":{}", w * width / 1_000));
                out.push_str(&format!(",\"gets\":{}", s.gets));
                out.push_str(&format!(",\"misses\":{}", s.misses));
                out.push_str(&format!(",\"ebusy\":{}", s.ebusy));
                out.push_str(&format!(",\"admits\":{}", s.admits));
                out.push_str(&format!(",\"rejects\":{}", s.rejects));
                out.push_str(&format!(",\"dispatches\":{}", s.dispatches));
                out.push_str(&format!(",\"completes\":{}", s.completes));
                out.push_str(&format!(
                    ",\"p50_us\":{}",
                    s.latency.quantile_ns(500) / 1_000
                ));
                out.push_str(&format!(
                    ",\"p95_us\":{}",
                    s.latency.quantile_ns(950) / 1_000
                ));
                out.push_str(&format!(
                    ",\"p99_us\":{}",
                    s.latency.quantile_ns(990) / 1_000
                ));
                out.push_str(&format!(
                    ",\"p999_us\":{}",
                    s.latency.quantile_ns(999) / 1_000
                ));
                out.push_str(&format!(
                    ",\"service_p99_us\":{}",
                    s.service.quantile_ns(990) / 1_000
                ));
                out.push_str(&format!(
                    ",\"burn_milli\":{}",
                    burn_milli(s.misses, s.gets, cfg.slo_budget_ppm)
                ));
                out.push_str(&format!(",\"breaker_opens\":{}", s.breaker_opens));
                out.push_str(&format!(",\"breaker_closes\":{}", s.breaker_closes));
                out.push_str(",\"reject_by_resource\":{");
                let mut rf = true;
                for r in Resource::ALL {
                    let n = s.rejects_by_resource[r.code() as usize];
                    if n > 0 {
                        if !rf {
                            out.push(',');
                        }
                        rf = false;
                        out.push_str(&format!("\"{}\":{}", r.name(), n));
                    }
                }
                out.push_str("}}");
            }
            out.push_str("]}");
        }
        out.push_str("],\"alerts\":[");
        for (i, a) in core.alerts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let (lo, hi) = a.span(&cfg);
            out.push_str(&format!(
                "{{\"kind\":\"{}\",\"window\":{},\"at_us\":{},\"span_start_us\":{},\"span_end_us\":{},\"burn_milli\":{}}}",
                a.kind.name(),
                a.window,
                a.at.as_micros(),
                lo.as_micros(),
                hi.as_micros(),
                a.burn_milli
            ));
        }
        out.push_str("],\"near_misses\":[");
        for (i, nm) in core.near_misses.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"invariant\":\"{}\",\"margin_us\":{},\"budget_us\":{}}}",
                nm.invariant,
                nm.margin.as_micros(),
                nm.budget.as_micros()
            ));
        }
        out.push_str("],\"flight_recorder\":[");
        for (i, d) in core.dumps.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let open = d.breakers.iter().filter(|&&(_, st)| st == 1).count();
            out.push_str(&format!(
                "{{\"id\":{},\"trigger\":\"{}\",\"at_us\":{},\"events\":{},\"breakers_open\":{},\"digest\":\"{:#018x}\"}}",
                d.id,
                d.trigger,
                d.at.as_micros(),
                d.events.len(),
                open,
                d.digest()
            ));
        }
        out.push(']');
        if let Some(bench) = bench_json {
            out.push_str(",\"bench\":");
            out.push_str(bench);
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mitt_trace::{EventKind, Subsystem};

    fn cfg_10ms() -> TslConfig {
        TslConfig {
            window: Duration::from_millis(10),
            deadline: Duration::from_millis(5),
            slo_budget_ppm: 10_000,
            fast_windows: 2,
            fast_threshold_milli: 10_000,
            slow_windows: 4,
            slow_threshold_milli: 2_000,
            flight_capacity: 4,
            flight_events: 8,
        }
    }

    fn at_ms(ms: u64) -> SimTime {
        SimTime::from_nanos(ms * 1_000_000)
    }

    #[test]
    fn disabled_sink_is_inert() {
        let s = TslSink::disabled();
        assert!(!s.is_enabled());
        s.observe_get(at_ms(1), Duration::from_millis(1));
        assert!(!s.tick(at_ms(100)));
        assert!(s.alerts().is_empty());
        let mut h = Fnv1a::new();
        s.fold_digest(&mut h);
        let mut h2 = Fnv1a::new();
        h2.write_u64(0);
        assert_eq!(h.finish(), h2.finish());
    }

    #[test]
    fn hist_quantiles_are_bucket_upper_bounds() {
        let mut hist = WinHist::default();
        for _ in 0..99 {
            hist.observe(1_000); // bucket 9 -> upper bound 1024
        }
        hist.observe(1_000_000); // bucket 19 -> upper bound 2^20
        assert_eq!(hist.quantile_ns(500), 1 << 10);
        assert_eq!(hist.quantile_ns(990), 1 << 10);
        assert_eq!(hist.quantile_ns(999), 1 << 20);
    }

    #[test]
    fn burn_math_is_integer_exact() {
        // 1% budget, 1% misses -> burn exactly 1000 milli.
        assert_eq!(burn_milli(1, 100, 10_000), 1_000);
        // 14% misses -> 14x burn.
        assert_eq!(burn_milli(14, 100, 10_000), 14_000);
        assert_eq!(burn_milli(0, 100, 10_000), 0);
        assert_eq!(burn_milli(5, 0, 10_000), 0);
    }

    #[test]
    fn fast_burn_fires_once_per_onset_and_overlaps_the_bad_windows() {
        let s = TslSink::enabled(cfg_10ms(), "test");
        // Window 0: healthy. Windows 1-2: everything misses.
        for i in 0..50 {
            s.observe_get(at_ms(i % 10), Duration::from_millis(1));
        }
        for i in 0..50 {
            s.observe_get(at_ms(10 + (i % 20)), Duration::from_millis(50));
        }
        s.finish(at_ms(30));
        let alerts = s.alerts();
        assert!(
            alerts.iter().any(|a| a.kind == AlertKind::FastBurn),
            "fast burn should fire, got {alerts:?}"
        );
        assert_eq!(s.fast_burn_alerts(), 1, "edge-triggered: one onset");
        let a = alerts[0];
        let (lo, hi) = a.span(&cfg_10ms());
        assert!(
            lo < at_ms(30) && hi > at_ms(10),
            "span overlaps bad windows"
        );
    }

    #[test]
    fn alert_arms_flight_recorder_and_dump_is_bounded() {
        let s = TslSink::enabled(cfg_10ms(), "test");
        for i in 0..40 {
            s.observe_get(at_ms(i % 20), Duration::from_millis(50));
        }
        assert!(s.tick(at_ms(25)), "tick past bad windows requests a dump");
        let events: Vec<TraceEvent> = (0..20)
            .map(|i| TraceEvent {
                at: at_ms(i),
                node: 0,
                subsystem: Subsystem::Node,
                kind: EventKind::Dispatch { io: i },
            })
            .collect();
        s.flight_record(events, vec![(0, 1), (1, 0)], at_ms(25));
        assert!(!s.wants_flight());
        let dumps = s.flight_dumps();
        assert_eq!(dumps.len(), 1);
        assert_eq!(dumps[0].events.len(), 8, "truncated to flight_events");
        assert_eq!(dumps[0].events[0].kind, EventKind::Dispatch { io: 12 });
        let json = dumps[0].to_json();
        assert!(json.starts_with("{\"schema\":\"mitt-tsl-flight/v1\""));
        assert!(json.contains("\"trigger\":\"fast_burn\""));
    }

    #[test]
    fn near_miss_with_thin_margin_arms_the_recorder() {
        let s = TslSink::enabled(cfg_10ms(), "test");
        s.record_near_miss(NearMiss {
            invariant: "bounded_unavailability",
            margin: Duration::from_millis(1),
            budget: Duration::from_millis(100),
        });
        assert!(s.wants_flight());
        s.record_near_miss(NearMiss {
            invariant: "breaker_flap",
            margin: Duration::from_millis(90),
            budget: Duration::from_millis(100),
        });
        assert_eq!(s.near_misses().len(), 2);
    }

    #[test]
    fn export_is_deterministic_and_self_consistent() {
        let build = || {
            let s = TslSink::enabled(cfg_10ms(), "mittos");
            let n0 = s.for_node(0);
            for i in 0..30 {
                s.observe_get(at_ms(i), Duration::from_micros(800 * (1 + i % 9)));
                n0.record_admit(at_ms(i));
                n0.observe_service(at_ms(i), Duration::from_micros(300));
            }
            n0.record_reject(at_ms(12), Resource::CfqQueue);
            s.record_ebusy(at_ms(12), Resource::CfqQueue);
            s.record_breaker_transition(0, at_ms(15), 1);
            s.finish(at_ms(30));
            s
        };
        let a = build();
        let b = build();
        assert_eq!(a.export_json(), b.export_json());
        let mut ha = Fnv1a::new();
        a.fold_digest(&mut ha);
        let mut hb = Fnv1a::new();
        b.fold_digest(&mut hb);
        assert_eq!(ha.finish(), hb.finish());
        let json = a.export_json();
        assert!(json.starts_with("{\"schema\":\"mitt-tsl/v1\""));
        assert!(json.contains("\"strategy\":\"mittos\""));
        assert!(json.contains("\"timelines\":[{\"node\":4294967295"));
        assert!(json.contains("\"reject_by_resource\":{\"cfq_queue\":1}"));
        let with_bench = a.export_json_with_bench(Some("{\"schema\":\"mitt-bench/v1\"}"));
        assert!(with_bench.ends_with(",\"bench\":{\"schema\":\"mitt-bench/v1\"}}"));
    }

    #[test]
    fn counter_events_track_window_ends() {
        let s = TslSink::enabled(cfg_10ms(), "test");
        for i in 0..10 {
            s.observe_get(at_ms(i), Duration::from_millis(1));
        }
        s.finish(at_ms(10));
        let evs = s.counter_events();
        assert_eq!(evs.len(), 2, "one p99 + one burn counter per window");
        assert_eq!(evs[0].at, at_ms(10));
        assert!(matches!(
            evs[0].kind,
            EventKind::Counter {
                name: "tsl.p99_us",
                ..
            }
        ));
    }

    #[test]
    fn finish_is_idempotent() {
        let s = TslSink::enabled(cfg_10ms(), "test");
        for i in 0..20 {
            s.observe_get(at_ms(i), Duration::from_millis(50));
        }
        s.finish(at_ms(20));
        let first = s.alerts().len();
        s.finish(at_ms(20));
        assert_eq!(s.alerts().len(), first);
    }
}
