//! Property-based tests for the cluster simulator: every strategy, under
//! arbitrary small configurations and noise, completes every user request
//! without losing or double-counting operations.

#![cfg(feature = "props")]
// Gated: `proptest` is a crates.io dependency, unavailable offline.
// See the root Cargo.toml note to re-enable.

use proptest::prelude::*;

use mitt_cluster::{
    run_experiment, ExperimentConfig, InitialReplica, NodeConfig, NoiseKind, NoiseStream, Strategy,
};
use mitt_device::IoClass;
use mitt_sim::Duration;
use mitt_workload::rotating_schedule;

fn strategy(idx: u8) -> Strategy {
    match idx {
        0 => Strategy::Base,
        1 => Strategy::AppTimeout {
            timeout: Duration::from_millis(15),
        },
        2 => Strategy::Clone2,
        3 => Strategy::Hedged {
            after: Duration::from_millis(15),
        },
        4 => Strategy::Tied {
            delay: Duration::from_millis(1),
        },
        5 => Strategy::Snitch { alpha: 0.3 },
        6 => Strategy::C3,
        7 => Strategy::MittOs {
            deadline: Duration::from_millis(15),
        },
        8 => Strategy::MittOsWait {
            deadline: Duration::from_millis(15),
        },
        _ => Strategy::MittOsAuto {
            initial: Duration::from_millis(15),
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Operation conservation: every user request completes exactly once,
    /// for every strategy, with and without noise, at any scale factor.
    #[test]
    fn all_strategies_conserve_ops(
        strat_idx in 0u8..10,
        seed in any::<u64>(),
        sf in 1usize..4,
        noisy in any::<bool>(),
    ) {
        let mut cfg = ExperimentConfig::micro(NodeConfig::disk_cfq(), strategy(strat_idx));
        cfg.seed = seed;
        cfg.clients = 2;
        cfg.ops_per_client = 25;
        cfg.scale_factor = sf;
        cfg.initial_replica = InitialReplica::Random;
        if noisy {
            cfg.noise = vec![NoiseStream {
                kind: NoiseKind::DiskReads {
                    len: 1 << 20,
                    class: IoClass::BestEffort,
                    priority: 4,
                },
                schedules: rotating_schedule(
                    3,
                    Duration::from_secs(1),
                    Duration::from_secs(600),
                    3,
                ),
            }];
        }
        let res = run_experiment(cfg);
        prop_assert_eq!(res.ops, 50);
        prop_assert_eq!(res.user_latencies.len(), 50);
        prop_assert_eq!(res.get_latencies.len(), 50 * sf);
        // MittOS on a 3-replica cluster with <=1 busy node never errors.
        if noisy && strat_idx == 7 {
            prop_assert_eq!(res.errors, 0);
        }
    }

    /// Determinism across the whole pipeline: identical configs produce
    /// identical latency samples.
    #[test]
    fn experiments_are_deterministic(strat_idx in 0u8..10, seed in any::<u64>()) {
        let mk = || {
            let mut cfg = ExperimentConfig::micro(NodeConfig::disk_cfq(), strategy(strat_idx));
            cfg.seed = seed;
            cfg.clients = 2;
            cfg.ops_per_client = 15;
            run_experiment(cfg)
        };
        let a = mk();
        let b = mk();
        prop_assert_eq!(a.user_latencies.samples(), b.user_latencies.samples());
        prop_assert_eq!(a.ebusy, b.ebusy);
        prop_assert_eq!(a.retries, b.retries);
        prop_assert_eq!(a.finished_at, b.finished_at);
    }
}
