//! One storage node: devices + scheduler + page cache + MittOS predictors.
//!
//! A [`Node`] is the simulated machine of Figure 1: local storage managed by
//! the host OS, shared by the data-parallel store and its noisy neighbors.
//! It composes the passive models from the substrate crates and wires the
//! MittOS predictors into the submission path:
//!
//! ```text
//!   submit_read ──► MittCache (addrcheck)             — hit / EBUSY / miss
//!                     └─► MittNoop | MittCFQ | MittSSD — admit / EBUSY
//!                           └─► noop | CFQ scheduler ──► disk (SSTF)
//!                           └─────────────────────────► SSD chips
//! ```
//!
//! Every IO — client get(), noisy neighbor, trace replay, cache refill —
//! flows through the same predictors, so the mirrors see exactly what the
//! kernel would. The node also hosts the audit mode of §7.6 (predictions
//! attached to descriptors instead of enforced) and the §7.7 error
//! injector.

use std::collections::{HashMap, HashSet};

use mitt_device::{
    BlockIo, Disk, DiskSpec, IoClass, IoId, IoIdGen, IoKind, NvramBuffer, ProcessId, Ssd, SsdSpec,
    Started, SubCompletion, SubIoKey,
};
use mitt_faults::FaultClock;
use mitt_oscache::{PageCache, PageCacheConfig};
use mitt_prof::ProfSink;
use mitt_sched::{Cfq, CfqConfig, DiskScheduler, Noop};
use mitt_sim::{Duration, SimRng, SimTime};
use mitt_trace::report::{CACHE_HIT_COUNTER, EBUSY_COUNTER, PREDICT_ERROR_HIST, SUBMIT_COUNTER};
use mitt_trace::{EventKind, Resource, Subsystem, TraceSink};
use mitt_tsl::TslSink;
use mittos::{
    decide, profile_disk, profile_ssd, CacheVerdict, Decision, DiskProfile, ErrorInjector,
    MittCache, MittCfq, MittNoop, MittSsd, Slo, ADDRCHECK_COST,
};

use crate::cpu::{CpuConfig, CpuModel};

/// Which device holds the requested data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Medium {
    /// The rotational disk stack (noop or CFQ).
    Disk,
    /// The OpenChannel SSD stack.
    Ssd,
}

/// Disk-stack configuration.
#[derive(Debug, Clone)]
pub struct DiskNodeConfig {
    /// Device parameters.
    pub spec: DiskSpec,
    /// Scheduler choice.
    pub sched: SchedKind,
    /// Absorb writes in an NVRAM buffer (§7.8.6).
    pub nvram: bool,
    /// Probe IOs for the offline profiling run.
    pub profile_samples: usize,
}

/// IO scheduler choice for the disk stack.
#[derive(Debug, Clone)]
pub enum SchedKind {
    /// FIFO dispatch (MittNoop predictor).
    Noop,
    /// CFQ service trees (MittCFQ predictor).
    Cfq(CfqConfig),
}

/// Page-cache configuration.
#[derive(Debug, Clone)]
pub struct CacheNodeConfig {
    /// Cache geometry.
    pub cfg: PageCacheConfig,
    /// Storage floor used by MittCache's residency-expectation test.
    pub min_io_latency: Duration,
}

/// Full node configuration.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// Disk stack, if present.
    pub disk: Option<DiskNodeConfig>,
    /// SSD stack, if present.
    pub ssd: Option<SsdSpec>,
    /// Page cache over the storage, if present.
    pub cache: Option<CacheNodeConfig>,
    /// CPU model for request handlers, if modelled.
    pub cpu: Option<CpuConfig>,
    /// §7.6 audit mode: predictions recorded, EBUSY never enforced.
    pub audit_mode: bool,
    /// §7.7 error injection: (false-negative rate, false-positive rate).
    pub inject: Option<(f64, f64)>,
    /// Ablation: ignore MittCFQ's tolerable-time table, letting bumped
    /// IOs miss their deadlines silently instead of late-EBUSYing.
    pub disable_bump_cancel: bool,
    /// One-hop failover cost added to deadlines.
    pub hop: Duration,
}

impl NodeConfig {
    /// A CFQ disk node — the MittCFQ experiments' default.
    pub fn disk_cfq() -> Self {
        NodeConfig {
            disk: Some(DiskNodeConfig {
                spec: DiskSpec::default(),
                sched: SchedKind::Cfq(CfqConfig::default()),
                nvram: true,
                profile_samples: 400,
            }),
            ssd: None,
            cache: None,
            cpu: Some(CpuConfig::disk_node()),
            audit_mode: false,
            inject: None,
            disable_bump_cancel: false,
            hop: mittos::DEFAULT_HOP,
        }
    }

    /// A noop disk node (MittNoop).
    pub fn disk_noop() -> Self {
        let mut cfg = NodeConfig::disk_cfq();
        if let Some(d) = cfg.disk.as_mut() {
            d.sched = SchedKind::Noop;
        }
        cfg
    }

    /// An SSD node on the paper's 8-core machine.
    pub fn ssd() -> Self {
        NodeConfig {
            disk: None,
            ssd: Some(SsdSpec::default()),
            cache: None,
            cpu: Some(CpuConfig::ssd_node()),
            audit_mode: false,
            inject: None,
            disable_bump_cancel: false,
            hop: mittos::DEFAULT_HOP,
        }
    }

    /// A disk node with the page cache in front (MittCache experiments).
    pub fn cached_disk() -> Self {
        let mut cfg = NodeConfig::disk_cfq();
        cfg.cache = Some(CacheNodeConfig {
            cfg: PageCacheConfig::default(),
            min_io_latency: Duration::from_millis(2),
        });
        cfg
    }

    /// All three stacks on one node (§7.8.5 "all in one").
    pub fn tiered() -> Self {
        let mut cfg = NodeConfig::disk_cfq();
        cfg.ssd = Some(SsdSpec::default());
        cfg.cache = Some(CacheNodeConfig {
            cfg: PageCacheConfig::default(),
            // The cache fronts the disk path; anything non-resident costs
            // at least a couple of ms there.
            min_io_latency: Duration::from_millis(2),
        });
        cfg
    }
}

/// A read request entering the node's OS.
#[derive(Debug, Clone)]
pub struct ReadReq {
    /// Byte offset on the target medium.
    pub offset: u64,
    /// Length in bytes.
    pub len: u32,
    /// SLO deadline (None = plain POSIX read).
    pub deadline: Option<Duration>,
    /// Submitting process.
    pub owner: ProcessId,
    /// ionice class.
    pub class: IoClass,
    /// ionice priority (0..=7).
    pub priority: u8,
    /// Which device holds the data.
    pub medium: Medium,
    /// Check the page cache first (mmap/addrcheck path).
    pub via_cache: bool,
}

impl ReadReq {
    /// A client get(): best-effort read on the disk medium.
    pub fn client(offset: u64, len: u32, owner: ProcessId) -> Self {
        ReadReq {
            offset,
            len,
            deadline: None,
            owner,
            class: IoClass::BestEffort,
            priority: 4,
            medium: Medium::Disk,
            via_cache: false,
        }
    }

    /// Attaches an SLO deadline.
    pub fn with_deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(d);
        self
    }

    /// Targets the SSD medium.
    pub fn on_ssd(mut self) -> Self {
        self.medium = Medium::Ssd;
        self
    }

    /// Routes through the page cache (mmap/addrcheck path).
    pub fn cached(mut self) -> Self {
        self.via_cache = true;
        self
    }

    /// Sets ionice class/priority (noise tenants).
    pub fn with_ionice(mut self, class: IoClass, priority: u8) -> Self {
        self.class = class;
        self.priority = priority;
        self
    }
}

/// Completion events the caller must schedule.
#[derive(Debug, Default)]
pub struct Ticks {
    /// Disk head started an IO: schedule a disk tick at `done_at`.
    pub disk: Option<Started>,
    /// SSD sub-IOs: schedule an SSD tick for each.
    pub ssd: Vec<SubCompletion>,
}

/// Outcome of submitting a read.
#[derive(Debug)]
pub enum ReadOutcome {
    /// Served from the page cache after `latency`.
    CacheHit {
        /// Service latency (addrcheck + memory copy).
        latency: Duration,
    },
    /// Rejected with EBUSY. `ticks` carries the background cache-refill IO
    /// MittCache keeps issuing after the rejection (§4.4 caveat).
    Busy {
        /// The predicted wait that violated the deadline.
        predicted_wait: Duration,
        /// The resource the rejection is blamed on (SLO attribution).
        resource: Resource,
        /// Refill completions to schedule.
        ticks: Ticks,
    },
    /// Queued into the storage stack; completion arrives via device ticks.
    Submitted {
        /// The assigned IO id (completion events reference it).
        io: IoId,
        /// Completions to schedule.
        ticks: Ticks,
    },
}

/// A full submission result.
#[derive(Debug)]
pub struct Submission {
    /// What happened to the request.
    pub outcome: ReadOutcome,
    /// Previously accepted IOs bumped out by this one (late EBUSY): the
    /// caller must fail their requests over.
    pub bumped: Vec<IoId>,
}

/// A completed storage IO.
#[derive(Debug, Clone, Copy)]
pub struct DoneIo {
    /// The IO that finished.
    pub io: IoId,
    /// Time it spent waiting before service (the quantity MittOS bounds).
    pub wait: Duration,
}

/// Result of a disk tick.
#[derive(Debug)]
pub struct DiskTickOut {
    /// The IO that completed.
    pub done: DoneIo,
    /// Next IO the head picked up, if any (schedule its tick).
    pub next: Option<Started>,
}

/// One resolved prediction in audit mode.
#[derive(Debug, Clone, Copy)]
pub struct AuditPair {
    /// Wait the predictor estimated at submission.
    pub predicted_wait: Duration,
    /// Wait the IO actually experienced.
    pub actual_wait: Duration,
    /// Whether MittOS would have returned EBUSY.
    pub would_reject: bool,
    /// The deadline the decision was made against.
    pub deadline: Duration,
}

enum DiskMitt {
    Noop(MittNoop),
    Cfq(MittCfq),
}

impl DiskMitt {
    /// The admission-path wait estimate (distorted by any active
    /// `PredictorBias` fault).
    fn predicted_wait(&self, io: &BlockIo, now: SimTime) -> Duration {
        match self {
            DiskMitt::Noop(m) => m.distorted_wait(now),
            DiskMitt::Cfq(m) => m.distorted_wait(io.class, io.priority, io.owner, now),
        }
    }

    fn account(&mut self, io: &BlockIo, now: SimTime) -> Vec<IoId> {
        match self {
            DiskMitt::Noop(m) => {
                m.account(io, now);
                Vec::new()
            }
            DiskMitt::Cfq(m) => m.account(io, now),
        }
    }

    fn on_dispatch(&mut self, id: IoId, now: SimTime) {
        if let DiskMitt::Cfq(m) = self {
            m.on_dispatch(id, now);
        }
    }

    /// SLO-attribution context of a rejection decided at `now`.
    fn attribution(&self, now: SimTime) -> (Resource, u64) {
        match self {
            DiskMitt::Noop(m) => m.attribution(now),
            DiskMitt::Cfq(m) => m.attribution(now),
        }
    }

    fn on_complete(&mut self, id: IoId, actual_service: Duration) {
        match self {
            DiskMitt::Noop(m) => m.on_complete(id, actual_service),
            DiskMitt::Cfq(m) => m.on_complete(id, actual_service),
        }
    }

    fn on_cancel(&mut self, id: IoId) {
        match self {
            DiskMitt::Noop(m) => m.on_cancel(id),
            DiskMitt::Cfq(m) => m.on_cancel(id),
        }
    }
}

struct DiskStack {
    disk: Disk,
    sched: Box<dyn DiskScheduler>,
    mitt: DiskMitt,
    nvram: Option<NvramBuffer>,
    profile: DiskProfile,
}

struct PendingSsd {
    remaining: u32,
    submit: SimTime,
    worst_wait: Duration,
}

struct SsdStack {
    ssd: Ssd,
    mitt: MittSsd,
    pending: HashMap<IoId, PendingSsd>,
}

struct CacheStack {
    cache: PageCache,
    mitt: MittCache,
    swap_rng: SimRng,
}

struct OpenAudit {
    predicted_wait: Duration,
    deadline: Duration,
    would_reject: bool,
}

/// One storage node.
pub struct Node {
    /// Node index within the cluster.
    pub id: usize,
    disk: Option<DiskStack>,
    ssd: Option<SsdStack>,
    cache: Option<CacheStack>,
    cpu: Option<CpuModel>,
    ids: IoIdGen,
    injector: Option<ErrorInjector>,
    audit_mode: bool,
    disable_bump_cancel: bool,
    audit_open: HashMap<IoId, OpenAudit>,
    audit_pairs: Vec<AuditPair>,
    fill_after_read: HashSet<IoId>,
    hop: Duration,
    ebusy_times: Vec<SimTime>,
    trace: TraceSink,
    prof: ProfSink,
    tsl: TslSink,
    /// Predicted wait of each admitted, traced IO, resolved against the
    /// actual wait at completion to feed the prediction-error histogram.
    pred_wait: HashMap<IoId, Duration>,
}

impl Node {
    /// Builds a node, running the offline device profiling the predictors
    /// need (§4.1's 11-hour run, instantaneous in virtual time).
    pub fn new(id: usize, cfg: NodeConfig, rng: &mut SimRng) -> Self {
        let disk = cfg.disk.map(|d| {
            // Profile a scratch twin of the device so the production
            // disk's state is untouched.
            let mut scratch = Disk::new(d.spec.clone(), rng.fork());
            let mut prof_rng = rng.fork();
            let profile = profile_disk(&mut scratch, d.profile_samples, &mut prof_rng)
                .expect("scratch disk is idle and exclusively owned");
            let disk = Disk::new(d.spec.clone(), rng.fork());
            let (sched, mitt): (Box<dyn DiskScheduler>, DiskMitt) = match d.sched {
                SchedKind::Noop => (
                    Box::new(Noop::new()),
                    DiskMitt::Noop(MittNoop::new(profile, cfg.hop)),
                ),
                SchedKind::Cfq(ref c) => (
                    Box::new(Cfq::new(c.clone())),
                    DiskMitt::Cfq(MittCfq::new(profile, cfg.hop)),
                ),
            };
            DiskStack {
                disk,
                sched,
                mitt,
                nvram: d.nvram.then(NvramBuffer::default_disk_backed),
                profile,
            }
        });
        let ssd = cfg.ssd.map(|spec| {
            let mut scratch = Ssd::new(spec.clone(), rng.fork());
            let profile = profile_ssd(&mut scratch, 200);
            let ssd = Ssd::new(spec.clone(), rng.fork());
            let mitt = MittSsd::new(&spec, profile, cfg.hop);
            SsdStack {
                ssd,
                mitt,
                pending: HashMap::new(),
            }
        });
        let cache = cfg.cache.map(|c| CacheStack {
            cache: PageCache::new(c.cfg),
            mitt: MittCache::new(c.min_io_latency),
            swap_rng: rng.fork(),
        });
        let injector = cfg
            .inject
            .map(|(fn_rate, fp_rate)| ErrorInjector::new(fn_rate, fp_rate, rng.fork()));
        Node {
            id,
            disk,
            ssd,
            cache,
            cpu: cfg.cpu.map(CpuModel::new),
            ids: IoIdGen::new(),
            injector,
            audit_mode: cfg.audit_mode,
            disable_bump_cancel: cfg.disable_bump_cancel,
            audit_open: HashMap::new(),
            audit_pairs: Vec::new(),
            fill_after_read: HashSet::new(),
            hop: cfg.hop,
            ebusy_times: Vec::new(),
            trace: TraceSink::disabled(),
            prof: ProfSink::disabled(),
            tsl: TslSink::disabled(),
            pred_wait: HashMap::new(),
        }
    }

    /// Attaches a trace sink, tagging every event with this node's id and
    /// propagating node-scoped handles to the predictors, the scheduler
    /// and the disk so the whole stack records into one ring.
    pub fn set_trace(&mut self, sink: &TraceSink) {
        let sink = sink.for_node(self.id as u32);
        if let Some(ds) = &mut self.disk {
            match &mut ds.mitt {
                DiskMitt::Noop(m) => m.set_trace(sink.clone()),
                DiskMitt::Cfq(m) => m.set_trace(sink.clone()),
            }
            ds.sched.set_trace(sink.clone());
            ds.disk.set_trace(sink.clone());
        }
        if let Some(ss) = &mut self.ssd {
            ss.mitt.set_trace(sink.clone());
        }
        if let Some(cs) = &mut self.cache {
            cs.mitt.set_trace(sink.clone());
        }
        self.trace = sink;
    }

    /// Attaches an engine profiling sink, fanning shared handles into the
    /// predictors, the scheduler and both device models (mirroring
    /// [`Node::set_trace`]). Profiling is pure observation: it must not
    /// consume RNG draws or reorder events (digest-neutrality).
    pub fn set_prof(&mut self, sink: &ProfSink) {
        if let Some(ds) = &mut self.disk {
            match &mut ds.mitt {
                DiskMitt::Noop(m) => m.set_prof(sink.clone()),
                DiskMitt::Cfq(m) => m.set_prof(sink.clone()),
            }
            ds.sched.set_prof(sink.clone());
            ds.disk.set_prof(sink.clone());
        }
        if let Some(ss) = &mut self.ssd {
            ss.ssd.set_prof(sink.clone());
            ss.mitt.set_prof(sink.clone());
        }
        if let Some(cs) = &mut self.cache {
            cs.mitt.set_prof(sink.clone());
        }
        self.prof = sink.clone();
    }

    /// Attaches a windowed-timeline sink, tagging it with this node's id
    /// and fanning node-scoped handles into the predictors, the scheduler
    /// and both devices (mirroring [`Node::set_trace`]). Timeline rollups
    /// are pure observation: no events, no RNG (digest-neutrality).
    pub fn set_tsl(&mut self, sink: &TslSink) {
        let sink = sink.for_node(self.id as u32);
        if let Some(ds) = &mut self.disk {
            match &mut ds.mitt {
                DiskMitt::Noop(m) => m.set_tsl(sink.clone()),
                DiskMitt::Cfq(m) => m.set_tsl(sink.clone()),
            }
            ds.sched.set_tsl(sink.clone());
            ds.disk.set_tsl(sink.clone());
        }
        if let Some(ss) = &mut self.ssd {
            ss.ssd.set_tsl(sink.clone());
            ss.mitt.set_tsl(sink.clone());
        }
        if let Some(cs) = &mut self.cache {
            cs.mitt.set_tsl(sink.clone());
        }
        self.tsl = sink;
    }

    /// Attaches a fault clock, tagging it with this node's id and fanning
    /// node-scoped handles into the devices, the scheduler and the
    /// predictors (mirroring [`Node::set_trace`]).
    pub fn set_faults(&mut self, clock: &FaultClock) {
        let clock = clock.for_node(self.id as u32);
        if let Some(ds) = &mut self.disk {
            match &mut ds.mitt {
                DiskMitt::Noop(m) => m.set_faults(clock.clone()),
                DiskMitt::Cfq(m) => m.set_faults(clock.clone()),
            }
            ds.sched.set_faults(clock.clone());
            ds.disk.set_faults(clock.clone());
        }
        if let Some(ss) = &mut self.ssd {
            ss.ssd.set_faults(clock.clone());
            ss.mitt.set_faults(clock.clone());
        }
        if let Some(cs) = &mut self.cache {
            cs.mitt.set_faults(clock);
        }
    }

    /// Runs pre-IO request-handler CPU work; returns when the IO can start.
    pub fn cpu_pre(&mut self, now: SimTime) -> SimTime {
        match &mut self.cpu {
            Some(c) => c.run_pre(now),
            None => now,
        }
    }

    /// Runs post-IO reply CPU work; returns when the reply can be sent.
    pub fn cpu_post(&mut self, now: SimTime) -> SimTime {
        match &mut self.cpu {
            Some(c) => c.run_post(now),
            None => now,
        }
    }

    /// Submits a read through the MittOS stack.
    pub fn submit_read(&mut self, req: &ReadReq, now: SimTime) -> Submission {
        self.prof.io_submitted();
        self.trace.count(SUBMIT_COUNTER, 1);
        // mmap/addrcheck path: consult the page cache first.
        if req.via_cache {
            if let Some(cs) = &mut self.cache {
                let slo = req.deadline.map(Slo::deadline);
                match cs.mitt.check(&cs.cache, req.offset, req.len, slo, now) {
                    CacheVerdict::Hit => {
                        cs.cache.access(req.offset, req.len);
                        let latency = cs.cache.config().hit_latency + ADDRCHECK_COST;
                        self.trace.count(CACHE_HIT_COUNTER, 1);
                        self.trace.emit(
                            now,
                            Subsystem::Node,
                            EventKind::CacheHit {
                                io: req.offset,
                                latency,
                            },
                        );
                        return Submission {
                            outcome: ReadOutcome::CacheHit { latency },
                            bumped: Vec::new(),
                        };
                    }
                    CacheVerdict::Busy { refill } => {
                        let resource = cs.mitt.attribution(now);
                        self.ebusy_times.push(now);
                        self.trace.count(EBUSY_COUNTER, 1);
                        self.trace.emit(
                            now,
                            Subsystem::Node,
                            EventKind::Reject {
                                io: req.offset,
                                predicted_wait: Duration::MAX,
                            },
                        );
                        // MittCache emits no Predict event, so the
                        // attribution carries no predicted wait either.
                        self.emit_attribution(
                            req.offset,
                            resource,
                            Duration::MAX,
                            refill.len() as u64,
                            now,
                        );
                        // Keep swapping the data in at Idle priority so the
                        // tenant's cache share is not starved (§4.4).
                        let ticks = self.submit_refill(req.offset, req.len, req.medium, now);
                        return Submission {
                            outcome: ReadOutcome::Busy {
                                predicted_wait: Duration::MAX,
                                resource,
                                ticks,
                            },
                            bumped: Vec::new(),
                        };
                    }
                    CacheVerdict::Miss { .. } => {
                        // Fall through to storage with the deadline
                        // propagated; fill the cache on completion.
                    }
                }
            }
        }
        let fill = req.via_cache && self.cache.is_some();
        let sub = self.submit_storage(req, now);
        if fill {
            if let ReadOutcome::Submitted { io, .. } = &sub.outcome {
                self.fill_after_read.insert(*io);
            }
        }
        sub
    }

    fn build_io(&mut self, req: &ReadReq, kind: IoKind, now: SimTime) -> BlockIo {
        let id = self.ids.next_id();
        let mut io = match kind {
            IoKind::Read => BlockIo::read(id, req.offset, req.len, req.owner, now),
            IoKind::Write => BlockIo::write(id, req.offset, req.len, req.owner, now),
        };
        io = io.with_ionice(req.class, req.priority);
        if let Some(d) = req.deadline {
            io = io.with_deadline(d);
        }
        self.trace.emit(
            now,
            Subsystem::Node,
            EventKind::Submit {
                io: io.id.0,
                len: io.len,
            },
        );
        io
    }

    fn submit_storage(&mut self, req: &ReadReq, now: SimTime) -> Submission {
        match req.medium {
            Medium::Disk => self.submit_disk(req, IoKind::Read, now),
            Medium::Ssd => self.submit_ssd(req, IoKind::Read, now),
        }
    }

    /// Records a predictor decision: the `predict` event plus the
    /// subsystem's admit/reject counter. The *raw* verdict is recorded,
    /// so audit mode and error injection do not distort predictor stats.
    fn emit_predict(
        &mut self,
        sub: Subsystem,
        io: &BlockIo,
        wait: Duration,
        admit: bool,
        now: SimTime,
    ) {
        if !self.trace.is_enabled() {
            return;
        }
        self.trace.emit(
            now,
            sub,
            EventKind::Predict {
                io: io.id.0,
                predicted_wait: wait,
                deadline: io.deadline,
                admitted: admit,
            },
        );
        let counter = if admit {
            sub.admit_counter()
        } else {
            sub.reject_counter()
        };
        self.trace.count(counter, 1);
    }

    /// Emits the SLO-attribution companion of a Reject: one `Attribution`
    /// event directly after the Reject in the ring (consumers pair them by
    /// order) plus the per-resource counter. No-op when untraced.
    fn emit_attribution(
        &mut self,
        io: u64,
        resource: Resource,
        predicted_wait: Duration,
        detail: u64,
        now: SimTime,
    ) {
        if !self.trace.is_enabled() {
            return;
        }
        self.trace.emit(
            now,
            Subsystem::Node,
            EventKind::Attribution {
                io,
                resource,
                predicted_wait,
                detail,
            },
        );
        self.trace.count(resource.counter(), 1);
    }

    /// Applies the audit/injection policy to a raw decision; returns the
    /// final decision.
    fn policy(&mut self, io: &BlockIo, raw: Decision) -> Decision {
        if io.deadline.is_none() {
            return raw;
        }
        if self.audit_mode {
            let deadline = io.deadline.expect("checked above");
            self.audit_open.insert(
                io.id,
                OpenAudit {
                    predicted_wait: raw.predicted_wait(),
                    deadline,
                    would_reject: !raw.is_admit(),
                },
            );
            return Decision::Admit {
                predicted_wait: raw.predicted_wait(),
            };
        }
        match &mut self.injector {
            Some(inj) => inj.apply(raw),
            None => raw,
        }
    }

    fn submit_disk(&mut self, req: &ReadReq, kind: IoKind, now: SimTime) -> Submission {
        let io = self.build_io(req, kind, now);
        let ds = self.disk.as_mut().expect("node has no disk stack");
        let wait = ds.mitt.predicted_wait(&io, now);
        let slo = io.deadline.map(Slo::deadline);
        let raw = decide(wait, slo, self.hop);
        let sub = match ds.mitt {
            DiskMitt::Noop(_) => Subsystem::MittNoop,
            DiskMitt::Cfq(_) => Subsystem::MittCfq,
        };
        self.emit_predict(sub, &io, wait, raw.is_admit(), now);
        let decision = self.policy(&io, raw);
        let ds = self.disk.as_mut().expect("node has no disk stack");
        match decision {
            Decision::Reject { predicted_wait } => {
                let (resource, depth) = ds.mitt.attribution(now);
                self.tsl.record_reject(now, resource);
                self.ebusy_times.push(now);
                self.trace.count(EBUSY_COUNTER, 1);
                self.trace.emit(
                    now,
                    Subsystem::Node,
                    EventKind::Reject {
                        io: io.id.0,
                        predicted_wait,
                    },
                );
                self.emit_attribution(io.id.0, resource, predicted_wait, depth, now);
                Submission {
                    outcome: ReadOutcome::Busy {
                        predicted_wait,
                        resource,
                        ticks: Ticks::default(),
                    },
                    bumped: Vec::new(),
                }
            }
            Decision::Admit { .. } => {
                self.tsl.record_admit(now);
                if self.trace.is_enabled() {
                    self.pred_wait.insert(io.id, wait);
                }
                let mut bumped = ds.mitt.account(&io, now);
                if self.disable_bump_cancel {
                    // Ablation: pretend the tolerable-time table does not
                    // exist — bumped IOs stay queued and miss silently.
                    bumped.clear();
                }
                if self.audit_mode {
                    // EBUSY is not enforced in audit mode: bumped IOs keep
                    // running, but their predictions flip to "would reject".
                    for id in bumped.drain(..) {
                        if let Some(a) = self.audit_open.get_mut(&id) {
                            a.would_reject = true;
                        }
                    }
                } else {
                    let (resource, depth) = ds.mitt.attribution(now);
                    for id in &bumped {
                        ds.sched.cancel(*id);
                        self.tsl.record_reject(now, resource);
                        self.ebusy_times.push(now);
                        self.trace.count(EBUSY_COUNTER, 1);
                        self.trace.emit(
                            now,
                            Subsystem::Node,
                            EventKind::Reject {
                                io: id.0,
                                predicted_wait: Duration::MAX,
                            },
                        );
                        // The bumped IO's own Predict event carried its
                        // admission-time wait; attribute with that value.
                        let pw = self.pred_wait.remove(id).unwrap_or(Duration::MAX);
                        if self.trace.is_enabled() {
                            self.trace.emit(
                                now,
                                Subsystem::Node,
                                EventKind::Attribution {
                                    io: id.0,
                                    resource,
                                    predicted_wait: pw,
                                    detail: depth,
                                },
                            );
                            self.trace.count(resource.counter(), 1);
                        }
                    }
                }
                let io_id = io.id;
                let out = ds.sched.enqueue(io, &mut ds.disk, now);
                for id in &out.dispatched {
                    ds.mitt.on_dispatch(*id, now);
                }
                Submission {
                    outcome: ReadOutcome::Submitted {
                        io: io_id,
                        ticks: Ticks {
                            disk: out.started,
                            ssd: Vec::new(),
                        },
                    },
                    bumped,
                }
            }
        }
    }

    fn submit_ssd(&mut self, req: &ReadReq, kind: IoKind, now: SimTime) -> Submission {
        let io = self.build_io(req, kind, now);
        let ss = self.ssd.as_mut().expect("node has no SSD stack");
        let wait = ss.mitt.distorted_wait(&io, now);
        let slo = io.deadline.map(Slo::deadline);
        let raw = decide(wait, slo, self.hop);
        self.emit_predict(Subsystem::MittSsd, &io, wait, raw.is_admit(), now);
        let decision = self.policy(&io, raw);
        let ss = self.ssd.as_mut().expect("node has no SSD stack");
        match decision {
            Decision::Reject { predicted_wait } => {
                let (resource, inflight) = ss.mitt.attribution(now);
                self.tsl.record_reject(now, resource);
                self.ebusy_times.push(now);
                self.trace.count(EBUSY_COUNTER, 1);
                self.trace.emit(
                    now,
                    Subsystem::Node,
                    EventKind::Reject {
                        io: io.id.0,
                        predicted_wait,
                    },
                );
                self.emit_attribution(io.id.0, resource, predicted_wait, inflight, now);
                Submission {
                    outcome: ReadOutcome::Busy {
                        predicted_wait,
                        resource,
                        ticks: Ticks::default(),
                    },
                    bumped: Vec::new(),
                }
            }
            Decision::Admit { .. } => {
                self.tsl.record_admit(now);
                if self.trace.is_enabled() {
                    self.pred_wait.insert(io.id, wait);
                }
                ss.mitt.account(&io, now);
                let out = ss.ssd.submit(&io, now);
                for gc in &out.gc {
                    ss.mitt.on_gc(gc.chip, gc.busy, now);
                }
                ss.pending.insert(
                    io.id,
                    PendingSsd {
                        remaining: out.subs.len() as u32,
                        submit: now,
                        worst_wait: Duration::ZERO,
                    },
                );
                Submission {
                    outcome: ReadOutcome::Submitted {
                        io: io.id,
                        ticks: Ticks {
                            disk: None,
                            ssd: out.subs,
                        },
                    },
                    bumped: Vec::new(),
                }
            }
        }
    }

    /// Submits a write. Disk writes are absorbed by NVRAM when configured
    /// (§7.8.6); otherwise writes flow through the storage stack like
    /// reads.
    pub fn submit_write(&mut self, req: &ReadReq, now: SimTime) -> WriteOutcome {
        self.prof.io_submitted();
        if req.medium == Medium::Disk {
            if let Some(ds) = &mut self.disk {
                if let Some(nvram) = &mut ds.nvram {
                    return WriteOutcome::Buffered {
                        latency: nvram.write(req.len, now),
                    };
                }
            }
        }
        let sub = match req.medium {
            Medium::Disk => self.submit_disk(req, IoKind::Write, now),
            Medium::Ssd => self.submit_ssd(req, IoKind::Write, now),
        };
        WriteOutcome::Submitted(sub)
    }

    /// Issues the background swap-in read MittCache schedules after an
    /// EBUSY, at Idle priority with no deadline.
    fn submit_refill(&mut self, offset: u64, len: u32, medium: Medium, now: SimTime) -> Ticks {
        let req = ReadReq {
            offset,
            len,
            deadline: None,
            owner: ProcessId(u32::MAX - 1),
            class: IoClass::Idle,
            priority: 7,
            medium,
            via_cache: false,
        };
        let sub = self.submit_storage(&req, now);
        match sub.outcome {
            ReadOutcome::Submitted { io, ticks } => {
                self.fill_after_read.insert(io);
                ticks
            }
            _ => Ticks::default(),
        }
    }

    /// Handles a disk completion event.
    ///
    /// # Panics
    ///
    /// Panics if the node has no disk stack or no IO is in flight.
    pub fn on_disk_tick(&mut self, now: SimTime) -> DiskTickOut {
        let ds = self.disk.as_mut().expect("node has no disk stack");
        let (fin, out) = ds
            .sched
            .on_complete(&mut ds.disk, now)
            .expect("disk tick scheduled, so an IO is in flight");
        ds.mitt.on_complete(fin.io.id, fin.service);
        for id in &out.dispatched {
            ds.mitt.on_dispatch(*id, now);
        }
        let wait = fin.started_at.saturating_since(fin.io.submit);
        self.resolve_prediction(fin.io.id, wait, now);
        if let Some(open) = self.audit_open.remove(&fin.io.id) {
            self.audit_pairs.push(AuditPair {
                predicted_wait: open.predicted_wait,
                actual_wait: wait,
                would_reject: open.would_reject,
                deadline: open.deadline,
            });
        }
        if self.fill_after_read.remove(&fin.io.id) {
            if let Some(cs) = &mut self.cache {
                let evicted = cs.cache.insert_range(fin.io.offset, fin.io.len);
                if !evicted.is_empty() {
                    self.trace.count("cache.evicted", evicted.len() as u64);
                    self.trace.emit(
                        now,
                        Subsystem::Node,
                        EventKind::Mark {
                            name: "cache_evict",
                            value: evicted.len() as u64,
                        },
                    );
                }
            }
        }
        DiskTickOut {
            done: DoneIo {
                io: fin.io.id,
                wait,
            },
            next: out.started,
        }
    }

    /// Handles one SSD sub-IO completion; returns the finished request
    /// once its last sub-page lands.
    pub fn on_ssd_tick(
        &mut self,
        key: SubIoKey,
        channel: usize,
        chip: usize,
        busy: Duration,
        now: SimTime,
    ) -> Option<DoneIo> {
        let ss = self.ssd.as_mut().expect("node has no SSD stack");
        ss.ssd.complete_sub(channel, now);
        ss.mitt.on_complete_sub(key.io, key.index, busy, chip);
        let pend = ss
            .pending
            .get_mut(&key.io)
            .expect("sub completion for unknown IO");
        let sub_wait = now.saturating_since(pend.submit).saturating_sub(busy);
        pend.worst_wait = pend.worst_wait.max(sub_wait);
        pend.remaining -= 1;
        if pend.remaining > 0 {
            return None;
        }
        let pend = ss.pending.remove(&key.io).expect("entry exists");
        self.resolve_prediction(key.io, pend.worst_wait, now);
        if let Some(open) = self.audit_open.remove(&key.io) {
            self.audit_pairs.push(AuditPair {
                predicted_wait: open.predicted_wait,
                actual_wait: pend.worst_wait,
                would_reject: open.would_reject,
                deadline: open.deadline,
            });
        }
        // SSD reads filling the cache (tiered configuration).
        if self.fill_after_read.remove(&key.io) {
            // Offset/len are unavailable here (the SSD tracks sub-IOs);
            // tiered reads re-insert via submit_read's hit path instead.
        }
        Some(DoneIo {
            io: key.io,
            wait: pend.worst_wait,
        })
    }

    /// Emits the node-level completion event and resolves the IO's
    /// prediction-error sample (|predicted - actual| wait).
    fn resolve_prediction(&mut self, id: IoId, actual_wait: Duration, now: SimTime) {
        if !self.trace.is_enabled() {
            return;
        }
        self.trace.emit(
            now,
            Subsystem::Node,
            EventKind::Complete {
                io: id.0,
                wait: actual_wait,
            },
        );
        if let Some(predicted) = self.pred_wait.remove(&id) {
            let err = predicted.as_nanos().abs_diff(actual_wait.as_nanos());
            self.trace.observe_ns(PREDICT_ERROR_HIST, err);
        }
    }

    /// Cancels a still-queued disk IO (tied-request revocation). Returns
    /// true if the IO was revoked before reaching the device.
    pub fn cancel_read(&mut self, id: IoId) -> bool {
        let Some(ds) = self.disk.as_mut() else {
            return false;
        };
        if ds.sched.cancel(id).is_some() {
            ds.mitt.on_cancel(id);
            self.fill_after_read.remove(&id);
            self.pred_wait.remove(&id);
            true
        } else {
            false
        }
    }

    /// Swaps out a percentage of resident pages (cache noise / thrash
    /// faults); each eviction storm is recorded as a trace marker.
    pub fn swap_out_pct(&mut self, pct: u32, now: SimTime) {
        if let Some(cs) = &mut self.cache {
            let mut rng = cs.swap_rng.fork();
            let evicted = cs.cache.swap_out_fraction(f64::from(pct) / 100.0, &mut rng);
            if evicted > 0 {
                self.trace.count("cache.evicted", evicted as u64);
                self.trace.emit(
                    now,
                    Subsystem::Node,
                    EventKind::Mark {
                        name: "cache_evict",
                        value: evicted as u64,
                    },
                );
            }
        }
    }

    /// Preloads a byte range into the page cache (experiment setup).
    pub fn preload(&mut self, offset: u64, len: u32) {
        if let Some(cs) = &mut self.cache {
            cs.cache.insert_range(offset, len);
        }
    }

    /// Drops a byte range from the cache (`posix_fadvise`).
    pub fn fadvise(&mut self, offset: u64, len: u32) {
        if let Some(cs) = &mut self.cache {
            cs.cache.fadvise_dontneed(offset, len);
        }
    }

    /// IOs currently inside the disk stack (scheduler + device), the
    /// Figure 13b occupancy signal.
    pub fn disk_occupancy(&self) -> usize {
        self.disk
            .as_ref()
            .map_or(0, |ds| ds.sched.queued() + ds.disk.occupancy())
    }

    /// Times at which this node returned EBUSY.
    pub fn ebusy_times(&self) -> &[SimTime] {
        &self.ebusy_times
    }

    /// Resolved audit pairs (audit mode only).
    pub fn audit_pairs(&self) -> &[AuditPair] {
        &self.audit_pairs
    }

    /// The fitted disk profile, if a disk stack exists.
    pub fn disk_profile(&self) -> Option<DiskProfile> {
        self.disk.as_ref().map(|d| d.profile)
    }

    /// Cache hit ratio so far, if a cache exists.
    pub fn cache_hit_ratio(&self) -> Option<f64> {
        self.cache.as_ref().map(|c| c.cache.hit_ratio())
    }
}

/// Outcome of a write submission.
#[derive(Debug)]
pub enum WriteOutcome {
    /// Absorbed by NVRAM after `latency` (§7.8.6).
    Buffered {
        /// User-visible commit latency.
        latency: Duration,
    },
    /// Flows through the storage stack like a read.
    Submitted(Submission),
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::new(42)
    }

    fn drain_disk(node: &mut Node, first: Option<Started>) -> Vec<(IoId, SimTime)> {
        let mut done = Vec::new();
        let mut tick = first;
        while let Some(s) = tick {
            let out = node.on_disk_tick(s.done_at);
            done.push((out.done.io, s.done_at));
            tick = out.next;
        }
        done
    }

    #[test]
    fn disk_read_completes_through_stack() {
        let mut r = rng();
        let mut node = Node::new(0, NodeConfig::disk_cfq(), &mut r);
        let req = ReadReq::client(500 * mitt_device::GB, 4096, ProcessId(1))
            .with_deadline(Duration::from_millis(20));
        let sub = node.submit_read(&req, SimTime::ZERO);
        let ReadOutcome::Submitted { io, ticks } = sub.outcome else {
            panic!("expected submission, got {:?}", sub.outcome);
        };
        let done = drain_disk(&mut node, ticks.disk);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].0, io);
        // Idle disk: wait should be ~zero.
        assert!(done[0].1 > SimTime::ZERO);
    }

    #[test]
    fn busy_disk_rejects_deadline_reads() {
        let mut r = rng();
        let mut node = Node::new(0, NodeConfig::disk_cfq(), &mut r);
        // Saturate with no-deadline noise IOs.
        let mut first = None;
        for i in 0..30u64 {
            let req = ReadReq::client((i * 31) % 1000 * mitt_device::GB, 4096, ProcessId(9));
            let sub = node.submit_read(&req, SimTime::ZERO);
            if let ReadOutcome::Submitted { ticks, .. } = sub.outcome {
                first = first.or(ticks.disk);
            }
        }
        let req = ReadReq::client(100 * mitt_device::GB, 4096, ProcessId(1))
            .with_deadline(Duration::from_millis(20));
        let sub = node.submit_read(&req, SimTime::ZERO);
        assert!(
            matches!(sub.outcome, ReadOutcome::Busy { .. }),
            "30 queued IOs must exceed a 20ms deadline"
        );
        assert_eq!(node.ebusy_times().len(), 1);
        // The stack still drains cleanly.
        let done = drain_disk(&mut node, first);
        assert_eq!(done.len(), 30);
    }

    #[test]
    fn ssd_read_completes_and_releases_channels() {
        let mut r = rng();
        let mut node = Node::new(0, NodeConfig::ssd(), &mut r);
        let req = ReadReq::client(0, 4096, ProcessId(1))
            .on_ssd()
            .with_deadline(Duration::from_millis(2));
        let sub = node.submit_read(&req, SimTime::ZERO);
        let ReadOutcome::Submitted { io, ticks } = sub.outcome else {
            panic!("expected submission");
        };
        assert_eq!(ticks.ssd.len(), 1);
        let sc = ticks.ssd[0];
        let done = node.on_ssd_tick(sc.key, sc.channel, sc.chip, sc.busy, sc.done_at);
        assert_eq!(done.expect("request finishes").io, io);
    }

    #[test]
    fn ssd_busy_chip_rejects() {
        let mut r = rng();
        let mut node = Node::new(0, NodeConfig::ssd(), &mut r);
        // Queue writes on chip 0 (offset 0 maps to chip 0).
        for _ in 0..3 {
            let wreq = ReadReq::client(0, 4096, ProcessId(9)).on_ssd();
            node.submit_write(&wreq, SimTime::ZERO);
        }
        let req = ReadReq::client(0, 4096, ProcessId(1))
            .on_ssd()
            .with_deadline(Duration::from_micros(300));
        let sub = node.submit_read(&req, SimTime::ZERO);
        assert!(matches!(sub.outcome, ReadOutcome::Busy { .. }));
    }

    #[test]
    fn cache_hit_and_busy_paths() {
        let mut r = rng();
        let mut node = Node::new(0, NodeConfig::cached_disk(), &mut r);
        node.preload(0, 8192);
        let req = ReadReq::client(0, 4096, ProcessId(1))
            .cached()
            .with_deadline(Duration::from_micros(100));
        let sub = node.submit_read(&req, SimTime::ZERO);
        assert!(matches!(sub.outcome, ReadOutcome::CacheHit { .. }));
        // Swap the page out: tight deadline now earns EBUSY + background
        // refill.
        node.fadvise(0, 4096);
        let sub = node.submit_read(&req, SimTime::ZERO);
        let ReadOutcome::Busy { ticks, .. } = sub.outcome else {
            panic!("expected EBUSY after swap-out");
        };
        // The refill IO fills the cache when it completes.
        let done = drain_disk(&mut node, ticks.disk);
        assert_eq!(done.len(), 1);
        let sub = node.submit_read(&req, SimTime::ZERO + Duration::from_secs(1));
        assert!(
            matches!(sub.outcome, ReadOutcome::CacheHit { .. }),
            "refill must repopulate the cache"
        );
    }

    #[test]
    fn cold_miss_goes_to_disk_not_ebusy() {
        let mut r = rng();
        let mut node = Node::new(0, NodeConfig::cached_disk(), &mut r);
        let req = ReadReq::client(4096, 4096, ProcessId(1))
            .cached()
            .with_deadline(Duration::from_micros(100));
        let sub = node.submit_read(&req, SimTime::ZERO);
        assert!(
            matches!(sub.outcome, ReadOutcome::Submitted { .. }),
            "first access is not contention"
        );
    }

    #[test]
    fn nvram_absorbs_writes() {
        let mut r = rng();
        let mut node = Node::new(0, NodeConfig::disk_cfq(), &mut r);
        let req = ReadReq::client(0, 4096, ProcessId(1));
        match node.submit_write(&req, SimTime::ZERO) {
            WriteOutcome::Buffered { latency } => {
                assert!(latency < Duration::from_millis(1));
            }
            WriteOutcome::Submitted(_) => panic!("nvram node must buffer"),
        }
    }

    #[test]
    fn audit_mode_never_rejects_but_records() {
        let mut r = rng();
        let mut cfg = NodeConfig::disk_cfq();
        cfg.audit_mode = true;
        let mut node = Node::new(0, cfg, &mut r);
        let mut first = None;
        // Build a backlog, then submit deadline IOs that would be rejected.
        for i in 0..20u64 {
            let req = ReadReq::client((i * 37) % 1000 * mitt_device::GB, 4096, ProcessId(9));
            if let ReadOutcome::Submitted { ticks, .. } =
                node.submit_read(&req, SimTime::ZERO).outcome
            {
                first = first.or(ticks.disk);
            }
        }
        let req = ReadReq::client(1, 4096, ProcessId(1)).with_deadline(Duration::from_millis(10));
        let sub = node.submit_read(&req, SimTime::ZERO);
        assert!(
            matches!(sub.outcome, ReadOutcome::Submitted { .. }),
            "audit mode must not reject"
        );
        drain_disk(&mut node, first);
        assert_eq!(node.audit_pairs().len(), 1);
        let pair = node.audit_pairs()[0];
        assert!(pair.would_reject, "backlog was far beyond the deadline");
        assert!(pair.actual_wait > Duration::from_millis(10));
    }

    #[test]
    fn injected_false_positive_rejects_idle_node() {
        let mut r = rng();
        let mut cfg = NodeConfig::disk_cfq();
        cfg.inject = Some((0.0, 1.0));
        let mut node = Node::new(0, cfg, &mut r);
        let req = ReadReq::client(0, 4096, ProcessId(1)).with_deadline(Duration::from_millis(20));
        let sub = node.submit_read(&req, SimTime::ZERO);
        assert!(
            matches!(sub.outcome, ReadOutcome::Busy { .. }),
            "100% FP injection must reject even an idle node"
        );
    }

    #[test]
    fn tied_cancellation_revokes_queued_io() {
        let mut r = rng();
        let mut node = Node::new(0, NodeConfig::disk_cfq(), &mut r);
        // First IO occupies the head; the second stays queued.
        let a = ReadReq::client(0, 4096, ProcessId(1));
        let sub_a = node.submit_read(&a, SimTime::ZERO);
        let ReadOutcome::Submitted { ticks, .. } = sub_a.outcome else {
            panic!()
        };
        // CFQ dispatches up to max_device_ios immediately; queue more to
        // leave one in scheduler queues.
        let mut queued_id = None;
        for i in 0..8u64 {
            let r2 = ReadReq::client((i + 2) * mitt_device::GB, 4096, ProcessId(1));
            if let ReadOutcome::Submitted { io, .. } = node.submit_read(&r2, SimTime::ZERO).outcome
            {
                queued_id = Some(io);
            }
        }
        let victim = queued_id.expect("at least one IO queued");
        assert!(node.cancel_read(victim), "queued IO must be cancellable");
        assert!(!node.cancel_read(victim), "double cancel is a no-op");
        // Drain to make sure the cancelled IO never completes.
        let done = drain_disk(&mut node, ticks.disk);
        assert!(done.iter().all(|&(id, _)| id != victim));
    }
}
