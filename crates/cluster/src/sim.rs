//! The cluster simulator: replicated key-value store, clients, strategies,
//! noise — the machinery behind every evaluation figure.
//!
//! A [`ClusterSim`] wires N [`Node`]s (each with its own storage stack and
//! MittOS predictors), a replicated keyspace (every key readable from R
//! consecutive nodes), closed-loop YCSB clients issuing `get()`s — each
//! user request fanning out to `scale_factor` parallel gets (§7.3) — and
//! per-node noisy-neighbor schedules. Tail-tolerance strategies are
//! implemented exactly as §7.2 describes them:
//!
//! - **Base**: one try, effectively no timeout.
//! - **AppTimeout**: cancel (at application level) and retry after the p95
//!   latency; the third try never times out.
//! - **Clone**: duplicate every request to two replicas, first wins.
//! - **Hedged**: send a second request once the first is outstanding
//!   longer than the p95 latency; first is not cancelled.
//! - **Tied**: send two requests tagged with each other's identity; when
//!   one begins execution at the device, revoke the other (§7.8.2 — doable
//!   here because our OS exposes the begin-execution signal).
//! - **Snitch / C3**: pick the replica with the best recent latency
//!   (plus C3's outstanding-queue penalty) — no failover.
//! - **MittOs**: attach the SLO deadline, fail over instantly on EBUSY;
//!   the third try disables the deadline. **MittOsWait** additionally uses
//!   the returned wait-time hints to pick the least-busy replica when all
//!   three are busy (§7.8.1 extension). **MittOsAuto** tunes the deadline
//!   from EBUSY-rate feedback (§8.1 extension).

use std::collections::HashMap;

use mitt_device::{IoClass, IoId, ProcessId, SubIoKey, GB};
use mitt_faults::{
    BreakerState, BreakerTransition, CircuitBreaker, FaultClock, FaultKind, FaultPlan,
    ResilienceConfig,
};
use mitt_lsm::{GetStep, LsmConfig, LsmEngine};
use mitt_prof::{GaugeSample, Phase, ProfSink};
use mitt_sim::{Duration, EventQueue, LatencyRecorder, SimRng, SimTime};
use mitt_trace::report::{NET_HOP_COUNTER, NET_HOP_FAULTED_COUNTER, NET_HOP_HIST};
use mitt_trace::{EventKind, Resource, Subsystem, TraceSink, CLUSTER_NODE, DEFAULT_RING_CAPACITY};
use mitt_tsl::{TslConfig, TslSink};
use mitt_workload::{KeyDist, NoiseBurst, YcsbConfig, YcsbGenerator};
use mittos::DeadlineTuner;

use crate::mmapdb::{BtreeConfig, BtreePlanner};
use crate::node::{Medium, Node, NodeConfig, ReadOutcome, ReadReq, Ticks, WriteOutcome};

/// How long a client waits before concluding a request sent to a crashed
/// node is lost (the failure-detection timeout). Every strategy without a
/// circuit breaker pays this per try that lands on a crashed replica.
pub const CRASH_REPLY_DELAY: Duration = Duration::from_millis(250);

/// Sender-side retransmission delay after a `NetDrop` window eats a
/// message: the copy is detected missing and resent after this long
/// (dropped messages delay, they never strand an op).
pub const RETRANSMIT_DELAY: Duration = Duration::from_millis(1);

/// Tail-tolerance strategy under test.
#[derive(Debug, Clone)]
pub enum Strategy {
    /// Single try, no timeout.
    Base,
    /// Timeout-and-retry with app-level cancellation; 3rd try never
    /// times out.
    AppTimeout {
        /// Retry threshold (the p95 latency in the paper).
        timeout: Duration,
    },
    /// Duplicate every request to two replicas.
    Clone2,
    /// Second request after the first is outstanding `after`.
    Hedged {
        /// Hedge threshold (the p95 latency in the paper).
        after: Duration,
    },
    /// Two tied requests; the loser is revoked at begin-execution.
    Tied {
        /// Delay before the duplicate is sent.
        delay: Duration,
    },
    /// Pick the replica with the lowest EWMA latency.
    Snitch {
        /// EWMA smoothing factor.
        alpha: f64,
    },
    /// C3-style adaptive selection: EWMA latency + cubic outstanding
    /// penalty.
    C3,
    /// MittOS: deadline-tagged reads, instant EBUSY failover.
    MittOs {
        /// The SLO deadline (p95 expected latency).
        deadline: Duration,
    },
    /// MittOS with wait-time hints: when all replicas return EBUSY, the
    /// final try goes to the least-busy one.
    MittOsWait {
        /// The SLO deadline.
        deadline: Duration,
    },
    /// MittOS with the §8.1 deadline auto-tuner.
    MittOsAuto {
        /// Initial deadline before feedback kicks in.
        initial: Duration,
    },
    /// A surveyed NoSQL system's behaviour (Table 1): a default timeout
    /// and whether timing out fails over or surfaces an error.
    NosqlProfile {
        /// The system's (coarse) default timeout.
        timeout: Duration,
        /// True if a timeout triggers failover; false surfaces an error.
        failover: bool,
    },
}

impl Strategy {
    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::Base => "Base",
            Strategy::AppTimeout { .. } => "AppTO",
            Strategy::Clone2 => "Clone",
            Strategy::Hedged { .. } => "Hedged",
            Strategy::Tied { .. } => "Tied",
            Strategy::Snitch { .. } => "Snitch",
            Strategy::C3 => "C3",
            Strategy::MittOs { .. } => "MittOS",
            Strategy::MittOsWait { .. } => "MittOS+Wait",
            Strategy::MittOsAuto { .. } => "MittOS+Auto",
            Strategy::NosqlProfile { .. } => "NoSQL",
        }
    }

    fn is_mittos(&self) -> bool {
        matches!(
            self,
            Strategy::MittOs { .. } | Strategy::MittOsWait { .. } | Strategy::MittOsAuto { .. }
        )
    }
}

/// What the noisy neighbor does during a burst.
#[derive(Debug, Clone)]
pub enum NoiseKind {
    /// Keeps `intensity` concurrent reads of `len` bytes outstanding on
    /// the disk (the paper's 1 MB-read injector).
    DiskReads {
        /// Bytes per noise read.
        len: u32,
        /// ionice class of the noise tenant.
        class: IoClass,
        /// ionice priority of the noise tenant.
        priority: u8,
    },
    /// Keeps `intensity` concurrent writes of `len` bytes outstanding on
    /// the SSD.
    SsdWrites {
        /// Bytes per noise write.
        len: u32,
    },
    /// Swaps out `intensity` percent of the node's cached pages at burst
    /// start (VM ballooning).
    CacheSwap,
}

/// One noisy-neighbor load: what a burst does and when each node's
/// bursts happen. Multiple streams can run concurrently (§7.8.5 injects
/// disk, SSD and cache noise at once).
#[derive(Debug, Clone)]
pub struct NoiseStream {
    /// What a burst does.
    pub kind: NoiseKind,
    /// `schedules[node]` = that node's bursts (time-ordered).
    pub schedules: Vec<Vec<NoiseBurst>>,
}

/// Where a get()'s first try lands.
#[derive(Debug, Clone, Copy)]
pub enum InitialReplica {
    /// Uniformly random among the key's replicas.
    Random,
    /// Always the replica at this index of the replica list (index 0 =
    /// the key's primary).
    Fixed(usize),
    /// Always the given node when it replicates the key (the
    /// microbenchmarks direct all first tries at the noisy node).
    Node(usize),
}

/// Full experiment description.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Root RNG seed; everything derives from it.
    pub seed: u64,
    /// Cluster size.
    pub nodes: usize,
    /// Replication factor (3 in the paper).
    pub replication: usize,
    /// Concurrent closed-loop clients.
    pub clients: usize,
    /// User requests each client issues.
    pub ops_per_client: usize,
    /// Parallel gets per user request (§7.3's SF).
    pub scale_factor: usize,
    /// Strategy under test.
    pub strategy: Strategy,
    /// Node template.
    pub node_cfg: NodeConfig,
    /// Keyspace size.
    pub record_count: u64,
    /// Bytes read per get().
    pub read_len: u32,
    /// Which medium holds the data.
    pub medium: Medium,
    /// Route reads through the page cache (mmap path).
    pub via_cache: bool,
    /// Fraction of client ops that are writes (§7.8.6).
    pub write_fraction: f64,
    /// One-way network hop.
    pub hop: Duration,
    /// Concurrent noisy-neighbor streams.
    pub noise: Vec<NoiseStream>,
    /// Open-loop background IO per node (trace replay, macrobenchmarks):
    /// `(node, arrivals)`.
    pub background: Vec<(usize, Vec<mitt_workload::TraceIo>)>,
    /// Preload every node's cache with the whole keyspace (MittCache
    /// experiments).
    pub preload_cache: bool,
    /// Node whose EBUSY/occupancy timeline to record (Figure 13b).
    pub watch_node: Option<usize>,
    /// First-try placement.
    pub initial_replica: InitialReplica,
    /// Closed-loop think time between a user request's completion and the
    /// client's next issue (0 = back-to-back; Figure 3's probes use
    /// 100 ms / 20 ms pacing).
    pub think_time: Duration,
    /// When set, every node runs a LevelDB-like LSM engine (§5): a get()
    /// executes the engine's lookup plan (index + data block reads, table
    /// cache, blooms) and *any* step's EBUSY fails the whole try over —
    /// the two-level LevelDB+Riak integration. `None` = flat key-value
    /// layout.
    pub engine: Option<LsmConfig>,
    /// When set, gets traverse a MongoDB-style mmap B-tree: every page
    /// dereference is `addrcheck`-guarded through the node's page cache,
    /// and an EBUSY at *any* level (root, internal, leaf, record) fails
    /// the try over. Requires a node config with a cache.
    pub mmap_btree: Option<BtreeConfig>,
    /// Asynchronous replication lag: a write completed at one replica
    /// becomes visible at the others this much later (ZERO = synchronous).
    /// Enables the §8.3 staleness accounting.
    pub replication_lag: Duration,
    /// §8.3's conservative switching: during failover, prefer replicas
    /// that have already applied the session's writes ("do not failover
    /// until the other replicas are no longer stale"), at the price of
    /// sometimes waiting out the busy-but-fresh replica.
    pub monotonic_guard: bool,
    /// Record a structured event trace and metrics registry for the run
    /// (every node plus the cluster driver share one bounded ring); the
    /// sink lands in [`ExperimentResult::trace`].
    pub trace: bool,
    /// Self-profile the engine: phase timers, allocation telemetry, live
    /// gauges and a throughput meter land in [`ExperimentResult::prof`].
    /// Profiling is wall-clock-only observation — it never consumes RNG
    /// draws or schedules events, so digests are identical with it on or
    /// off for the same seed.
    pub prof: bool,
    /// Windowed tail-latency timelines and SLO burn-rate alerting (see
    /// `mitt-tsl`): per-window percentile/EBUSY rollups land in
    /// [`ExperimentResult::tsl`]. Rollups are inline — no events, no RNG —
    /// so the trace digest is identical with this on or off; the timeline
    /// itself folds into the run digest. A `deadline` left at ZERO is
    /// substituted with the strategy's own SLO deadline (20 ms for
    /// deadline-less strategies) so Base and MittOS runs are judged
    /// against the same SLO.
    pub tsl: Option<TslConfig>,
    /// Scheduled fault injection (empty = healthy run; the RNG streams and
    /// digests of planless runs are untouched).
    pub faults: FaultPlan,
    /// Client-side resilience policies — per-replica circuit breaker and
    /// bounded EBUSY backoff — honoured by the MittOS strategies only.
    /// `None` reproduces the paper's behaviour exactly.
    pub resilience: Option<ResilienceConfig>,
}

impl ExperimentConfig {
    /// A small 3-node / 1-client microbenchmark skeleton.
    pub fn micro(node_cfg: NodeConfig, strategy: Strategy) -> Self {
        ExperimentConfig {
            seed: 1,
            nodes: 3,
            replication: 3,
            clients: 1,
            ops_per_client: 300,
            scale_factor: 1,
            strategy,
            node_cfg,
            record_count: 200_000,
            read_len: 4096,
            medium: Medium::Disk,
            via_cache: false,
            write_fraction: 0.0,
            hop: mittos::DEFAULT_HOP,
            noise: Vec::new(),
            background: Vec::new(),
            preload_cache: false,
            watch_node: None,
            initial_replica: InitialReplica::Node(0),
            think_time: Duration::ZERO,
            engine: None,
            mmap_btree: None,
            replication_lag: Duration::ZERO,
            monotonic_guard: false,
            trace: false,
            prof: false,
            tsl: None,
            faults: FaultPlan::default(),
            resilience: None,
        }
    }

    /// The paper's 20-node / 20-client macrobenchmark skeleton.
    pub fn cluster20(node_cfg: NodeConfig, strategy: Strategy) -> Self {
        ExperimentConfig {
            seed: 1,
            nodes: 20,
            replication: 3,
            clients: 20,
            ops_per_client: 250,
            scale_factor: 1,
            strategy,
            node_cfg,
            record_count: 2_000_000,
            read_len: 4096,
            medium: Medium::Disk,
            via_cache: false,
            write_fraction: 0.0,
            hop: mittos::DEFAULT_HOP,
            noise: Vec::new(),
            background: Vec::new(),
            preload_cache: false,
            watch_node: None,
            initial_replica: InitialReplica::Random,
            think_time: Duration::ZERO,
            engine: None,
            mmap_btree: None,
            replication_lag: Duration::ZERO,
            monotonic_guard: false,
            trace: false,
            prof: false,
            tsl: None,
            faults: FaultPlan::default(),
            resilience: None,
        }
    }
}

/// Watch-node timeline (Figure 13b).
#[derive(Debug, Default, Clone)]
pub struct WatchLog {
    /// Times the node returned EBUSY.
    pub ebusy_times: Vec<SimTime>,
    /// `(time, IOs inside the disk stack)` samples.
    pub occupancy: Vec<(SimTime, usize)>,
}

/// Everything an experiment run produces.
#[derive(Debug)]
pub struct ExperimentResult {
    /// Per user-request completion latency (max over its SF gets).
    pub user_latencies: LatencyRecorder,
    /// Per-get completion latency.
    pub get_latencies: LatencyRecorder,
    /// EBUSY responses clients observed.
    pub ebusy: u64,
    /// Retries (timeouts, failovers, hedges).
    pub retries: u64,
    /// Requests that surfaced an error to the user.
    pub errors: u64,
    /// Completed user requests.
    pub ops: u64,
    /// Reads served by a replica that had not yet applied the session's
    /// latest write to that key (§8.3 staleness; 0 with synchronous
    /// replication).
    pub stale_reads: u64,
    /// Watch-node timeline, if requested.
    pub watch: Option<WatchLog>,
    /// Virtual time when the workload finished.
    pub finished_at: SimTime,
    /// The run's trace sink (disabled unless [`ExperimentConfig::trace`]
    /// was set): export with `export_chrome_json()` / `report_text()`.
    pub trace: TraceSink,
    /// The run's engine-profiling sink (disabled unless
    /// [`ExperimentConfig::prof`] was set): export with `report_json()` /
    /// `folded_stacks()`. Never feeds the run digest.
    pub prof: ProfSink,
    /// The run's windowed-timeline sink (disabled unless
    /// [`ExperimentConfig::tsl`] was set): export with `export_json()`;
    /// alerts, near-misses and flight dumps are queryable directly.
    pub tsl: TslSink,
    /// Fault windows the run activated (0 on a healthy run).
    pub injected_faults: u64,
    /// Messages eaten by `NetDrop` windows (each cost one retransmit).
    pub dropped_messages: u64,
    /// `T_wait` estimates distorted by `PredictorBias` windows.
    pub distorted_predictions: u64,
    /// Circuit-breaker open transitions (resilience policies only).
    pub breaker_opens: u64,
    /// Whole-round EBUSY backoff retries (`Strategy::MittOs` + resilience).
    pub backoff_retries: u64,
    /// Completion time of every get, in completion order; gaps between
    /// consecutive entries expose unavailability windows under faults.
    pub completion_times: Vec<SimTime>,
    /// IOs hit by a `PartialDegrade` gray window (summed over replicas).
    pub degraded_ios: u64,
    /// Per-replica breaker transition logs as `(node, transition)` pairs,
    /// drained at finalize; the invariant checker audits their legality.
    pub breaker_transitions: Vec<(usize, BreakerTransition)>,
}

#[derive(Debug, Clone, Copy)]
enum TryResult {
    /// Success; carries the server's piggybacked queue size (C3-style
    /// feedback: the serving node reports its IO backlog with the reply).
    Ok { server_queue: usize },
    Busy {
        wait: Duration,
        /// The resource the serving node blamed for the rejection
        /// (forwarded so failovers can be attributed client-side).
        resource: Resource,
    },
    /// The serving node crashed before replying; the client's failure
    /// detector delivers this verdict [`CRASH_REPLY_DELAY`] after the loss.
    Crashed,
}

enum Ev {
    ClientIssue {
        client: usize,
    },
    OpArrive {
        op: usize,
        attempt: usize,
    },
    SubmitIo {
        op: usize,
        attempt: usize,
    },
    PlanStep {
        op: usize,
        attempt: usize,
    },
    DiskTick {
        node: usize,
    },
    SsdTick {
        node: usize,
        key: SubIoKey,
        channel: usize,
        chip: usize,
        busy: Duration,
    },
    LocalDone {
        op: usize,
        attempt: usize,
    },
    Reply {
        op: usize,
        attempt: usize,
        result: TryResult,
    },
    HedgeFire {
        op: usize,
    },
    TimeoutFire {
        op: usize,
        attempt: usize,
    },
    TiedSend {
        op: usize,
    },
    TiedCancel {
        node: usize,
        io: IoId,
    },
    NoiseBurst {
        stream: usize,
        node: usize,
        idx: usize,
    },
    NoiseIo {
        stream: usize,
        node: usize,
        idx: usize,
    },
    BgIo {
        node: usize,
        stream: usize,
        idx: usize,
    },
    WatchSample,
    FaultStart {
        idx: usize,
    },
    FaultEnd {
        idx: usize,
    },
    ThrashTick {
        idx: usize,
    },
    RetryOp {
        op: usize,
    },
}

#[derive(Debug, Clone, Copy)]
enum IoCtx {
    Get {
        op: usize,
        attempt: usize,
    },
    Noise {
        stream: usize,
        node: usize,
        idx: usize,
    },
    Background,
}

/// One step of a multi-access lookup (LSM engine or mmap B-tree walk).
#[derive(Debug, Clone, Copy)]
enum AccessStep {
    /// Served from process memory (memtable); no IO.
    Memory,
    /// A storage access, optionally through the page cache (mmap path).
    Storage {
        offset: u64,
        len: u32,
        via_cache: bool,
    },
}

struct AttemptState {
    node: usize,
    io: Option<IoId>,
    resolved: bool,
    deadline: Option<Duration>,
    /// Multi-step lookup plan and the next step to execute.
    plan: Option<Vec<AccessStep>>,
    step: usize,
    /// True when this try carries the replica's half-open breaker probe:
    /// its reply must route to the probe-aware breaker feedback so a
    /// fault-window EBUSY cannot close the breaker.
    probe: bool,
}

struct OpState {
    client: usize,
    user: usize,
    key: u64,
    offset: u64,
    replicas: Vec<usize>,
    attempts: Vec<AttemptState>,
    busy_waits: Vec<(usize, Duration)>,
    done: bool,
    started: SimTime,
    is_write: bool,
    /// Attempts before this index belong to previous backoff rounds; the
    /// failover walk counts tries from here.
    round_base: usize,
    /// Backoff rounds consumed so far (bounded by the policy).
    backoff_round: u32,
}

struct UserReq {
    remaining: usize,
    started: SimTime,
}

struct ClientState {
    rng: SimRng,
    issued: usize,
    /// Snitch/C3 state: per-replica EWMA latency (ns).
    ewma: Vec<f64>,
    /// C3 state: per-replica EWMA of server-reported queue size.
    qhat: Vec<f64>,
    outstanding: Vec<u32>,
    tuner: Option<DeadlineTuner>,
    /// Session state for §8.3 monotonic reads: the client's last write
    /// time per key.
    last_write: HashMap<u64, SimTime>,
}

/// The cluster simulator.
pub struct ClusterSim {
    cfg: ExperimentConfig,
    q: EventQueue<Ev>,
    nodes: Vec<Node>,
    clients: Vec<ClientState>,
    ycsb: YcsbGenerator,
    ops: Vec<OpState>,
    users: Vec<UserReq>,
    io_ctx: HashMap<(usize, IoId), IoCtx>,
    engines: Vec<LsmEngine>,
    btree: Option<BtreePlanner>,
    /// §8.3 replication state: when each (node, key) applied its latest
    /// write. Absent = applied since forever.
    fresh_at: HashMap<(usize, u64), SimTime>,
    noise_rng: SimRng,
    net_rng: SimRng,
    /// Shared fault clock (disabled on planless runs).
    fault_clock: FaultClock,
    /// Per-node handles of `fault_clock`; empty when disabled.
    fault_handles: Vec<FaultClock>,
    /// Per-replica client-side circuit breakers; empty unless a resilience
    /// policy is configured for a MittOS strategy.
    breakers: Vec<CircuitBreaker>,
    /// Which nodes are currently crashed.
    down: Vec<bool>,
    /// Engine self-profiling handle (disabled unless `cfg.prof`).
    prof: ProfSink,
    /// Next virtual time the profiler samples its live gauges; sampling is
    /// done inline in `handle()` so no extra events perturb the queue.
    next_prof_sample: SimTime,
    /// Windowed-timeline handle, cluster-tagged (disabled unless
    /// `cfg.tsl`). Window advancement happens inline in `handle()` so no
    /// extra events perturb the queue.
    tsl: TslSink,
    result: ExperimentResult,
    completed_users: usize,
    target_users: usize,
    usable: u64,
}

impl ClusterSim {
    /// Builds the cluster (profiling every node's devices) and seeds the
    /// initial events.
    pub fn new(cfg: ExperimentConfig) -> Self {
        assert!(cfg.replication >= 1 && cfg.replication <= cfg.nodes);
        assert!(cfg.scale_factor >= 1);
        let mut root = SimRng::new(cfg.seed);
        let nodes: Vec<Node> = (0..cfg.nodes)
            .map(|i| Node::new(i, cfg.node_cfg.clone(), &mut root))
            .collect();
        let clients: Vec<ClientState> = (0..cfg.clients)
            .map(|_| ClientState {
                rng: root.fork(),
                issued: 0,
                ewma: vec![0.0; cfg.nodes],
                qhat: vec![0.0; cfg.nodes],
                outstanding: vec![0; cfg.nodes],
                last_write: HashMap::new(),
                tuner: match cfg.strategy {
                    Strategy::MittOsAuto { initial } => Some(DeadlineTuner::default_p95(initial)),
                    _ => None,
                },
            })
            .collect();
        let ycsb = YcsbGenerator::new(YcsbConfig {
            record_count: cfg.record_count,
            value_size: cfg.read_len,
            read_fraction: 1.0 - cfg.write_fraction,
            key_dist: KeyDist::Zipfian { theta: 0.99 },
        });
        // Offsets must fit the smallest medium; keep keys inside ~90% of a
        // 1TB disk / the SSD's space.
        let usable = 900 * GB;
        let target_users = cfg.clients * cfg.ops_per_client;
        let btree = cfg
            .mmap_btree
            .as_ref()
            .map(|b| BtreePlanner::new(b.clone(), cfg.record_count));
        let engines = match &cfg.engine {
            Some(lsm_cfg) => {
                let mut c = lsm_cfg.clone();
                c.keyspace = cfg.record_count;
                (0..cfg.nodes)
                    .map(|_| LsmEngine::preloaded(c.clone()))
                    .collect()
            }
            None => Vec::new(),
        };
        let noise_rng = root.fork();
        let net_rng = root.fork();
        // Fault clock forks last, and only when a plan exists: planless
        // runs keep the exact RNG streams (and digests) of a build without
        // fault injection.
        let fault_clock = if cfg.faults.is_empty() {
            FaultClock::disabled()
        } else {
            FaultClock::new(cfg.faults.clone(), root.fork())
        };
        let fault_handles: Vec<FaultClock> = if fault_clock.is_enabled() {
            (0..cfg.nodes)
                .map(|i| fault_clock.for_node(i as u32))
                .collect()
        } else {
            Vec::new()
        };
        let breakers: Vec<CircuitBreaker> = match cfg.resilience {
            Some(r) if cfg.strategy.is_mittos() => (0..cfg.nodes)
                .map(|_| CircuitBreaker::new(r.breaker))
                .collect(),
            _ => Vec::new(),
        };
        let down = vec![false; cfg.nodes];
        let mut sim = ClusterSim {
            q: EventQueue::new(),
            nodes,
            clients,
            ycsb,
            ops: Vec::new(),
            users: Vec::new(),
            io_ctx: HashMap::new(),
            engines,
            btree,
            fresh_at: HashMap::new(),
            noise_rng,
            net_rng,
            fault_clock,
            fault_handles,
            breakers,
            down,
            prof: ProfSink::disabled(),
            next_prof_sample: SimTime::ZERO,
            tsl: TslSink::disabled(),
            result: ExperimentResult {
                user_latencies: LatencyRecorder::new(),
                get_latencies: LatencyRecorder::new(),
                ebusy: 0,
                retries: 0,
                errors: 0,
                ops: 0,
                stale_reads: 0,
                watch: cfg.watch_node.map(|_| WatchLog::default()),
                finished_at: SimTime::ZERO,
                trace: TraceSink::disabled(),
                prof: ProfSink::disabled(),
                tsl: TslSink::disabled(),
                injected_faults: 0,
                dropped_messages: 0,
                distorted_predictions: 0,
                breaker_opens: 0,
                backoff_retries: 0,
                completion_times: Vec::new(),
                degraded_ios: 0,
                breaker_transitions: Vec::new(),
            },
            completed_users: 0,
            target_users,
            usable,
            cfg,
        };
        if sim.cfg.trace {
            let sink = TraceSink::enabled(DEFAULT_RING_CAPACITY);
            for node in &mut sim.nodes {
                node.set_trace(&sink);
            }
            sim.result.trace = sink.for_node(CLUSTER_NODE);
        }
        if sim.cfg.prof {
            let sink = ProfSink::enabled();
            for node in &mut sim.nodes {
                node.set_prof(&sink);
            }
            sim.prof = sink.clone();
            sim.result.prof = sink;
        }
        if let Some(mut t) = sim.cfg.tsl {
            if t.deadline.is_zero() {
                // Judge every strategy against the same SLO: the MittOS
                // deadline when the strategy carries one, 20 ms (the
                // paper's disk p95) otherwise.
                t.deadline = match sim.cfg.strategy {
                    Strategy::MittOs { deadline } | Strategy::MittOsWait { deadline } => deadline,
                    Strategy::MittOsAuto { initial } => initial,
                    _ => Duration::from_millis(20),
                };
            }
            let sink = TslSink::enabled(t, sim.cfg.strategy.name());
            for node in &mut sim.nodes {
                node.set_tsl(&sink);
            }
            sim.tsl = sink.for_node(CLUSTER_NODE);
            sim.result.tsl = sim.tsl.clone();
        }
        if sim.fault_clock.is_enabled() {
            let clock = sim.fault_clock.clone();
            for node in &mut sim.nodes {
                node.set_faults(&clock);
            }
        }
        sim.setup();
        sim
    }

    fn setup(&mut self) {
        if self.cfg.preload_cache {
            if let Some(planner) = &self.btree {
                // Preload the whole mmap-ed file: node levels + records.
                let base = self
                    .cfg
                    .mmap_btree
                    .as_ref()
                    .expect("btree set")
                    .region_offset;
                let size = planner.file_size();
                let mut at = base;
                while at < base + size {
                    let chunk = (base + size - at).min(1 << 30) as u32;
                    for node in &mut self.nodes {
                        node.preload(at, chunk);
                    }
                    at += u64::from(chunk);
                }
            } else {
                let len = self.cfg.read_len;
                for key in 0..self.cfg.record_count {
                    let offset = self.offset_of(key);
                    for node in &mut self.nodes {
                        node.preload(offset, len);
                    }
                }
            }
        }
        // Noise schedules.
        let starts: Vec<(usize, usize, usize, SimTime)> = self
            .cfg
            .noise
            .iter()
            .enumerate()
            .flat_map(|(stream, ns)| {
                ns.schedules
                    .iter()
                    .enumerate()
                    .flat_map(move |(node, bursts)| {
                        bursts
                            .iter()
                            .enumerate()
                            .map(move |(idx, b)| (stream, node, idx, b.start))
                    })
            })
            .collect();
        for (stream, node, idx, start) in starts {
            self.q.schedule(start, Ev::NoiseBurst { stream, node, idx });
        }
        // Background streams.
        for (stream, (node, ios)) in self.cfg.background.iter().enumerate() {
            if !ios.is_empty() {
                self.q.schedule(
                    ios[0].at,
                    Ev::BgIo {
                        node: *node,
                        stream,
                        idx: 0,
                    },
                );
            }
        }
        // Fault plan: one activation and one deactivation event per window.
        for idx in 0..self.cfg.faults.events.len() {
            let ev = &self.cfg.faults.events[idx];
            self.q.schedule(ev.at, Ev::FaultStart { idx });
            self.q.schedule(ev.until(), Ev::FaultEnd { idx });
        }
        // Clients.
        for client in 0..self.cfg.clients {
            self.q.schedule(SimTime::ZERO, Ev::ClientIssue { client });
        }
        if self.cfg.watch_node.is_some() {
            self.q
                .schedule_in(Duration::from_millis(50), Ev::WatchSample);
        }
    }

    fn offset_of(&self, key: u64) -> u64 {
        // Page-aligned, scattered over the usable space, identical on
        // every replica.
        let slot = key % (self.usable / u64::from(self.cfg.read_len.max(4096)));
        slot * u64::from(self.cfg.read_len.max(4096))
    }

    fn replicas_of(&self, key: u64) -> Vec<usize> {
        let n = self.cfg.nodes;
        let h = (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 17) as usize % n;
        (0..self.cfg.replication).map(|i| (h + i) % n).collect()
    }

    fn net_delay(&mut self) -> Duration {
        // Jitter scales with the hop so sub-ms local setups (Figure 3
        // probes) are not swamped by a fixed jitter term.
        let jitter_max = (self.cfg.hop.as_nanos() / 4).max(1);
        self.cfg.hop + Duration::from_nanos(self.net_rng.range_u64(0, jitter_max))
    }

    /// Runs the experiment to completion and returns the results.
    pub fn run(mut self) -> ExperimentResult {
        while self.completed_users < self.target_users {
            let Some((now, ev)) = self.q.pop() else {
                panic!(
                    "event queue drained with {}/{} user requests done; stuck ops: {}",
                    self.completed_users,
                    self.target_users,
                    self.stuck_ops_debug()
                );
            };
            self.handle(now, ev);
        }
        self.finalize();
        self.result
    }

    fn stuck_ops_debug(&self) -> String {
        let mut out = String::new();
        for (i, op) in self.ops.iter().enumerate().filter(|(_, o)| !o.done).take(5) {
            out.push_str(&format!(
                "[op {i}: key={} attempts={:?}] ",
                op.key,
                op.attempts
                    .iter()
                    .map(|a| (a.node, a.io, a.resolved, a.deadline.is_some()))
                    .collect::<Vec<_>>()
            ));
        }
        out
    }

    /// Per-event profiler bookkeeping: the dispatch counter plus live
    /// gauges on a ~10 ms virtual-time cadence. Sampling happens inline
    /// (never via scheduled events) so the event queue's contents — and
    /// therefore tie-breaking and digests — are untouched by profiling.
    fn prof_tick(&mut self, now: SimTime) {
        self.prof.event_dispatched();
        if now < self.next_prof_sample {
            return;
        }
        self.next_prof_sample = now + Duration::from_millis(10);
        self.prof.sample_gauges(GaugeSample {
            at: now,
            event_ring: self.q.raw_len(),
            inflight_ios: self.io_ctx.len(),
            queue_depth: self.nodes.iter().map(Node::disk_occupancy).sum(),
        });
    }

    /// Inline timeline bookkeeping: advances the window clock and, when a
    /// burn-rate alert (or near-miss) just armed the flight recorder,
    /// snapshots the trace-ring tail plus current breaker states into a
    /// bounded dump. Pure observation — reads the ring, consumes no RNG,
    /// schedules nothing — so digests are untouched by enabling it.
    fn tsl_tick(&mut self, now: SimTime) {
        if self.tsl.tick(now) {
            let events = self
                .result
                .trace
                .tail_events(self.tsl.config().map_or(0, |c| c.flight_events));
            let breakers = self
                .breakers
                .iter()
                .enumerate()
                .map(|(n, b)| (n as u32, u64::from(b.state(now).code())))
                .collect();
            self.tsl.flight_record(events, breakers, now);
        }
    }

    fn handle(&mut self, now: SimTime, ev: Ev) {
        if self.prof.is_enabled() {
            self.prof_tick(now);
        }
        if self.tsl.is_enabled() {
            self.tsl_tick(now);
        }
        let _dispatch = self.prof.phase(Phase::Dispatch);
        match ev {
            Ev::ClientIssue { client } => self.client_issue(client, now),
            Ev::OpArrive { op, attempt } => self.op_arrive(op, attempt, now),
            Ev::SubmitIo { op, attempt } => self.submit_io(op, attempt, now),
            Ev::PlanStep { op, attempt } => {
                if !self.ops[op].done {
                    self.engine_step(op, attempt, now);
                }
            }
            Ev::DiskTick { node } => self.disk_tick(node, now),
            Ev::SsdTick {
                node,
                key,
                channel,
                chip,
                busy,
            } => self.ssd_tick(node, key, channel, chip, busy, now),
            Ev::LocalDone { op, attempt } => self.local_done(op, attempt, now),
            Ev::Reply {
                op,
                attempt,
                result,
            } => self.reply(op, attempt, result, now),
            Ev::HedgeFire { op } => self.hedge_fire(op, now),
            Ev::TimeoutFire { op, attempt } => self.timeout_fire(op, attempt, now),
            Ev::TiedSend { op } => self.tied_send(op, now),
            Ev::TiedCancel { node, io } => {
                // Revocation only wins if the IO is still queued; an
                // executing IO keeps its context and completes normally.
                if self.nodes[node].cancel_read(io) {
                    self.io_ctx.remove(&(node, io));
                }
            }
            Ev::NoiseBurst { stream, node, idx } => self.noise_burst(stream, node, idx, now),
            Ev::NoiseIo { stream, node, idx } => self.noise_io(stream, node, idx, now),
            Ev::BgIo { node, stream, idx } => self.bg_io(node, stream, idx, now),
            Ev::WatchSample => {
                if let (Some(w), Some(node)) = (&mut self.result.watch, self.cfg.watch_node) {
                    w.occupancy.push((now, self.nodes[node].disk_occupancy()));
                    if self.completed_users < self.target_users {
                        self.q
                            .schedule_in(Duration::from_millis(50), Ev::WatchSample);
                    }
                }
            }
            Ev::FaultStart { idx } => self.fault_start(idx, now),
            Ev::FaultEnd { idx } => self.fault_end(idx, now),
            Ev::ThrashTick { idx } => self.thrash_tick(idx, now),
            Ev::RetryOp { op } => self.retry_op(op, now),
        }
    }

    // ------------------------------------------------------------------
    // Client side.
    // ------------------------------------------------------------------

    fn client_issue(&mut self, client: usize, now: SimTime) {
        if self.clients[client].issued >= self.cfg.ops_per_client {
            return;
        }
        self.clients[client].issued += 1;
        let user = self.users.len();
        self.users.push(UserReq {
            remaining: self.cfg.scale_factor,
            started: now,
        });
        for _ in 0..self.cfg.scale_factor {
            let op_rng = &mut self.clients[client].rng;
            let key = self.ycsb.next_op(op_rng).key();
            let is_write = op_rng.chance(self.cfg.write_fraction);
            let offset = self.offset_of(key);
            let replicas = self.replicas_of(key);
            let op = self.ops.len();
            self.ops.push(OpState {
                client,
                user,
                key,
                offset,
                replicas,
                attempts: Vec::new(),
                busy_waits: Vec::new(),
                done: false,
                started: now,
                is_write,
                round_base: 0,
                backoff_round: 0,
            });
            self.start_op(op, now);
        }
    }

    fn pick_initial(&mut self, op: usize) -> usize {
        let n_replicas = self.ops[op].replicas.len();
        match self.cfg.initial_replica {
            InitialReplica::Fixed(i) => i.min(n_replicas - 1),
            InitialReplica::Node(n) => self.ops[op]
                .replicas
                .iter()
                .position(|&r| r == n)
                .unwrap_or(0),
            InitialReplica::Random => {
                let client = self.ops[op].client;
                self.clients[client].rng.index(n_replicas)
            }
        }
    }

    fn deadline_for(&self, op: usize, attempt_no: usize) -> Option<Duration> {
        if self.ops[op].is_write {
            return None;
        }
        match &self.cfg.strategy {
            Strategy::MittOs { deadline } => {
                // The final (3rd) retry disables the deadline so the op
                // always has a completion path. With a backoff policy the
                // whole-round retry *is* the completion path, so the
                // deadline stays on every try until the round budget is
                // spent; the final round then reverts to the plain rule.
                match self.cfg.resilience {
                    Some(r) if self.ops[op].backoff_round < r.backoff.max_rounds => Some(*deadline),
                    _ => (attempt_no + 1 < self.cfg.replication).then_some(*deadline),
                }
            }
            Strategy::MittOsWait { deadline } => {
                // The rich interface keeps the deadline on every replica
                // try; when all three reject, the 4th goes to the
                // least-busy one with the deadline disabled (§7.8.1).
                (attempt_no < self.cfg.replication).then_some(*deadline)
            }
            Strategy::MittOsAuto { .. } => {
                let t = self.clients[self.ops[op].client]
                    .tuner
                    .as_ref()
                    .expect("auto strategy has a tuner");
                (attempt_no + 1 < self.cfg.replication).then_some(t.deadline())
            }
            _ => None,
        }
    }

    fn start_op(&mut self, op: usize, now: SimTime) {
        {
            let _t = self.prof.phase(Phase::TraceEmit);
            self.result.trace.emit(
                now,
                Subsystem::Cluster,
                EventKind::SpanBegin {
                    name: "op",
                    id: op as u64,
                },
            );
        }
        match self.cfg.strategy.clone() {
            Strategy::Base | Strategy::AppTimeout { .. } | Strategy::NosqlProfile { .. } => {
                let replica_idx = self.pick_initial(op);
                let node = self.ops[op].replicas[replica_idx];
                self.send_try(op, node, now, self.deadline_for(op, 0));
                match self.cfg.strategy {
                    Strategy::AppTimeout { timeout } => {
                        self.q
                            .schedule(now + timeout, Ev::TimeoutFire { op, attempt: 0 });
                    }
                    Strategy::NosqlProfile { timeout, .. } => {
                        self.q
                            .schedule(now + timeout, Ev::TimeoutFire { op, attempt: 0 });
                    }
                    _ => {}
                }
            }
            Strategy::Clone2 => {
                // Two random distinct replicas.
                let r = self.ops[op].replicas.clone();
                let client = self.ops[op].client;
                let a = self.clients[client].rng.index(r.len());
                let mut b = self.clients[client].rng.index(r.len());
                if b == a {
                    b = (a + 1) % r.len();
                }
                self.send_try(op, r[a], now, None);
                self.send_try(op, r[b], now, None);
            }
            Strategy::Hedged { after } => {
                let replica_idx = self.pick_initial(op);
                let node = self.ops[op].replicas[replica_idx];
                self.send_try(op, node, now, None);
                self.q.schedule(now + after, Ev::HedgeFire { op });
            }
            Strategy::Tied { delay } => {
                let replica_idx = self.pick_initial(op);
                let node = self.ops[op].replicas[replica_idx];
                self.send_try(op, node, now, None);
                self.q.schedule(now + delay, Ev::TiedSend { op });
            }
            Strategy::Snitch { alpha: _ } | Strategy::C3 => {
                let node = self.adaptive_pick(op);
                self.send_try(op, node, now, None);
            }
            Strategy::MittOs { .. } | Strategy::MittOsWait { .. } | Strategy::MittOsAuto { .. } => {
                let replica_idx = self.pick_initial(op);
                // Rotate the replica list so failovers walk the remaining
                // replicas in order.
                self.ops[op].replicas.rotate_left(replica_idx);
                if self.cfg.monotonic_guard && !self.ops[op].is_write {
                    // §8.3: be conservative about switching — walk replicas
                    // that have applied the session's writes first, so a
                    // failover never lands on a stale one while a fresh
                    // one exists.
                    let key = self.ops[op].key;
                    let client = self.ops[op].client;
                    if self.clients[client].last_write.contains_key(&key) {
                        let fresh_at = &self.fresh_at;
                        self.ops[op].replicas.sort_by_key(|&r| {
                            fresh_at.get(&(r, key)).map_or(SimTime::ZERO, |&v| v)
                        });
                    }
                }
                if !self.breakers.is_empty() {
                    // Skip replicas whose breaker is open (crashed or
                    // fail-slow suspects); if every breaker is open keep
                    // the default order — liveness beats the breaker.
                    let replicas = self.ops[op].replicas.clone();
                    if let Some(pos) =
                        (0..replicas.len()).find(|&i| self.breakers[replicas[i]].allow(now))
                    {
                        self.ops[op].replicas.rotate_left(pos);
                    }
                }
                let node = self.ops[op].replicas[0];
                let d = self.deadline_for(op, 0);
                self.send_try(op, node, now, d);
            }
        }
    }

    fn adaptive_pick(&mut self, op: usize) -> usize {
        let client = self.ops[op].client;
        let replicas = self.ops[op].replicas.clone();
        let st = &self.clients[client];
        let mut best = replicas[0];
        let mut best_score = f64::INFINITY;
        for &r in &replicas {
            let base = st.ewma[r];
            let score = match self.cfg.strategy {
                Strategy::C3 => {
                    // C3's cubic queue penalty: the queue estimate blends
                    // the server-piggybacked backlog with the client's own
                    // outstanding requests to that replica.
                    let q = st.qhat[r] + f64::from(st.outstanding[r]) + 1.0;
                    base + q * q * q * (base.max(1e5) / 8.0)
                }
                _ => base,
            };
            if score < best_score {
                best_score = score;
                best = r;
            }
        }
        best
    }

    fn send_try(&mut self, op: usize, node: usize, now: SimTime, deadline: Option<Duration>) {
        let attempt = self.ops[op].attempts.len();
        // If the replica's breaker just admitted a half-open probe, this
        // try is it: bind_probe is a one-shot claim.
        let probe = !self.breakers.is_empty() && self.breakers[node].bind_probe();
        self.ops[op].attempts.push(AttemptState {
            node,
            io: None,
            resolved: false,
            deadline,
            plan: None,
            step: 0,
            probe,
        });
        let client = self.ops[op].client;
        self.clients[client].outstanding[node] += 1;
        let delay = self.net_delay_node(node, now);
        self.q.schedule(now + delay, Ev::OpArrive { op, attempt });
    }

    /// One-way delay to or from `node`, honouring any active network fault
    /// window: hop spikes add to the sample, and a dropped message costs a
    /// detection delay plus a retransmitted copy — drops delay messages
    /// rather than stranding ops, keeping the event loop live.
    fn net_delay_node(&mut self, node: usize, now: SimTime) -> Duration {
        let base = self.net_delay();
        let (d, faulted) = match self.fault_handles.get(node) {
            Some(fc) => {
                let fc = fc.clone();
                let extra = fc.net_extra(now);
                let mut d = base + extra;
                let dropped = fc.drop_message(now);
                if dropped {
                    d = d + RETRANSMIT_DELAY + self.net_delay();
                }
                (d, !extra.is_zero() || dropped)
            }
            None => (base, false),
        };
        self.emit_net_hop(node, d, faulted, now);
        d
    }

    /// Records one message leg in the trace: a `net_hop` event plus the
    /// hop counters/histogram (closing the "instrument the network model"
    /// item). Purely observational — no RNG is consumed, so traced and
    /// untraced runs stay schedule-identical.
    fn emit_net_hop(&mut self, node: usize, delay: Duration, faulted: bool, now: SimTime) {
        if !self.result.trace.is_enabled() {
            return;
        }
        let _t = self.prof.phase(Phase::TraceEmit);
        self.result.trace.emit(
            now,
            Subsystem::Cluster,
            EventKind::NetHop {
                node: node as u32,
                delay,
                faulted,
            },
        );
        self.result.trace.count(NET_HOP_COUNTER, 1);
        self.result.trace.observe_ns(NET_HOP_HIST, delay.as_nanos());
        if faulted {
            self.result.trace.count(NET_HOP_FAULTED_COUNTER, 1);
        }
    }

    // ------------------------------------------------------------------
    // Node side.
    // ------------------------------------------------------------------

    fn op_arrive(&mut self, op: usize, attempt: usize, now: SimTime) {
        let node = self.ops[op].attempts[attempt].node;
        if self.down[node] {
            // Arrived at a crashed node: the client learns only after the
            // failure-detection timeout.
            self.crashed_reply(op, attempt, now);
            return;
        }
        let ready = self.nodes[node].cpu_pre(now);
        self.q.schedule(ready, Ev::SubmitIo { op, attempt });
    }

    /// Schedules the delayed failure-detector verdict for a try that was
    /// lost to a crash.
    fn crashed_reply(&mut self, op: usize, attempt: usize, now: SimTime) {
        self.q.schedule(
            now + CRASH_REPLY_DELAY,
            Ev::Reply {
                op,
                attempt,
                result: TryResult::Crashed,
            },
        );
    }

    fn submit_io(&mut self, op: usize, attempt: usize, now: SimTime) {
        if self.ops[op].done && !matches!(self.cfg.strategy, Strategy::Clone2) {
            // Late attempt of an already-served op (e.g. hedge raced the
            // reply): drop it before it consumes device time.
            self.ops[op].attempts[attempt].resolved = true;
            return;
        }
        let node_id = self.ops[op].attempts[attempt].node;
        if self.down[node_id] {
            // The node crashed between arrival and submission.
            self.crashed_reply(op, attempt, now);
            return;
        }
        let deadline = self.ops[op].attempts[attempt].deadline;
        let offset = self.ops[op].offset;
        let is_write = self.ops[op].is_write;
        if !self.engines.is_empty() {
            if is_write {
                self.engine_put(op, attempt, node_id, now);
            } else {
                if self.ops[op].attempts[attempt].plan.is_none() {
                    let key = self.ops[op].key;
                    let steps: Vec<AccessStep> = self.engines[node_id]
                        .get_plan(key)
                        .steps
                        .iter()
                        .map(|s| match *s {
                            GetStep::MemtableHit => AccessStep::Memory,
                            GetStep::IndexRead { offset, len, .. }
                            | GetStep::DataRead { offset, len, .. } => AccessStep::Storage {
                                offset,
                                len,
                                via_cache: false,
                            },
                        })
                        .collect();
                    self.result.trace.count("lsm.lookup_plans", 1);
                    self.result.trace.emit(
                        now,
                        Subsystem::Cluster,
                        EventKind::Mark {
                            name: "lsm_plan_steps",
                            value: steps.len() as u64,
                        },
                    );
                    self.ops[op].attempts[attempt].plan = Some(steps);
                    self.ops[op].attempts[attempt].step = 0;
                }
                self.engine_step(op, attempt, now);
            }
            return;
        }
        if let Some(planner) = &self.btree {
            if !is_write {
                if self.ops[op].attempts[attempt].plan.is_none() {
                    let key = self.ops[op].key;
                    let steps: Vec<AccessStep> = planner
                        .touches(key)
                        .into_iter()
                        .map(|t| AccessStep::Storage {
                            offset: t.offset,
                            len: t.len,
                            via_cache: true,
                        })
                        .collect();
                    self.ops[op].attempts[attempt].plan = Some(steps);
                    self.ops[op].attempts[attempt].step = 0;
                }
                self.engine_step(op, attempt, now);
                return;
            }
        }
        let mut req = ReadReq::client(offset, self.cfg.read_len, ProcessId(1000));
        req.medium = self.cfg.medium;
        req.via_cache = self.cfg.via_cache;
        if let Some(d) = deadline {
            req = req.with_deadline(d);
        }
        if is_write {
            match self.nodes[node_id].submit_write(&req, now) {
                WriteOutcome::Buffered { latency } => {
                    self.q
                        .schedule(now + latency, Ev::LocalDone { op, attempt });
                }
                WriteOutcome::Submitted(sub) => {
                    self.after_submission(op, attempt, node_id, sub.outcome, sub.bumped, now);
                }
            }
            return;
        }
        let sub = self.nodes[node_id].submit_read(&req, now);
        self.after_submission(op, attempt, node_id, sub.outcome, sub.bumped, now);
    }

    /// Executes the next step of a multi-access lookup plan (LSM engine or
    /// mmap B-tree walk): memory steps complete locally; storage accesses
    /// flow through the MittOS stack, and an EBUSY on *any* step fails the
    /// whole try over (the two-level propagation of §5).
    fn engine_step(&mut self, op: usize, attempt: usize, now: SimTime) {
        let att = &self.ops[op].attempts[attempt];
        let node_id = att.node;
        let deadline = att.deadline;
        let step_idx = att.step;
        if self.down[node_id] {
            // The node crashed mid-plan: the rest of the lookup is lost.
            self.crashed_reply(op, attempt, now);
            return;
        }
        let step = att.plan.as_ref().and_then(|p| p.get(step_idx)).copied();
        let Some(step) = step else {
            // Plan exhausted: the lookup answered.
            self.q.schedule(now, Ev::LocalDone { op, attempt });
            return;
        };
        self.ops[op].attempts[attempt].step += 1;
        match step {
            AccessStep::Memory => {
                // Memory lookup: ~memtable search cost.
                self.q.schedule(
                    now + Duration::from_micros(20),
                    Ev::LocalDone { op, attempt },
                );
            }
            AccessStep::Storage {
                offset,
                len,
                via_cache,
            } => {
                let mut req = ReadReq::client(offset, len, ProcessId(1000));
                req.medium = self.cfg.medium;
                req.via_cache = via_cache;
                if let Some(d) = deadline {
                    req = req.with_deadline(d);
                }
                let sub = self.nodes[node_id].submit_read(&req, now);
                self.after_submission(op, attempt, node_id, sub.outcome, sub.bumped, now);
            }
        }
    }

    /// Engine-mode put: a memtable insert (fast), plus any flush and
    /// compaction IO submitted as background load.
    fn engine_put(&mut self, op: usize, attempt: usize, node_id: usize, now: SimTime) {
        let key = self.ops[op].key;
        let flush = self.engines[node_id].put(key, self.cfg.read_len);
        if !flush.is_empty() {
            self.result.trace.count("lsm.flush_ios", flush.len() as u64);
            self.result.trace.emit(
                now,
                Subsystem::Cluster,
                EventKind::Mark {
                    name: "lsm_flush_ios",
                    value: flush.len() as u64,
                },
            );
        }
        let mut bg: Vec<mitt_lsm::LsmIo> = flush;
        if let Some(job) = self.engines[node_id].maybe_compact() {
            self.result.trace.count("lsm.compactions", 1);
            self.result.trace.emit(
                now,
                Subsystem::Cluster,
                EventKind::Mark {
                    name: "lsm_compaction_ios",
                    value: (job.reads.len() + job.writes.len()) as u64,
                },
            );
            bg.extend(job.reads);
            bg.extend(job.writes);
        }
        for io in bg {
            let req = ReadReq {
                offset: io.offset % self.usable,
                len: io.len,
                deadline: None,
                owner: ProcessId(4000 + node_id as u32),
                class: IoClass::BestEffort,
                priority: 6,
                medium: self.cfg.medium,
                via_cache: false,
            };
            if io.is_read {
                let sub = self.nodes[node_id].submit_read(&req, now);
                self.handle_bumped(node_id, sub.bumped, now);
                if let ReadOutcome::Submitted { io, ticks } = sub.outcome {
                    self.io_ctx.insert((node_id, io), IoCtx::Background);
                    self.schedule_ticks(node_id, ticks, now);
                }
            } else if let WriteOutcome::Submitted(sub) = self.nodes[node_id].submit_write(&req, now)
            {
                self.handle_bumped(node_id, sub.bumped, now);
                if let ReadOutcome::Submitted { io, ticks } = sub.outcome {
                    self.io_ctx.insert((node_id, io), IoCtx::Background);
                    self.schedule_ticks(node_id, ticks, now);
                }
            }
        }
        // The user-visible put commits at memtable speed.
        self.q.schedule(
            now + Duration::from_micros(50),
            Ev::LocalDone { op, attempt },
        );
    }

    /// Routes the late EBUSYs of bump-cancelled IOs back to their ops.
    /// Every submission path that can admit a higher-priority IO — client
    /// gets, noise tenants, background streams, engine flushes — must call
    /// this with the node's `bumped` list.
    fn handle_bumped(&mut self, node_id: usize, bumped: Vec<IoId>, now: SimTime) {
        for id in bumped {
            if let Some(IoCtx::Get {
                op: bop,
                attempt: batt,
            }) = self.io_ctx.remove(&(node_id, id))
            {
                let delay = self.net_delay_node(node_id, now);
                self.q.schedule(
                    now + delay,
                    Ev::Reply {
                        op: bop,
                        attempt: batt,
                        result: TryResult::Busy {
                            wait: Duration::MAX,
                            // Only the CFQ tolerable-time table bumps
                            // admitted IOs, so the blame is unambiguous.
                            resource: Resource::CfqQueue,
                        },
                    },
                );
            }
        }
    }

    fn after_submission(
        &mut self,
        op: usize,
        attempt: usize,
        node_id: usize,
        outcome: ReadOutcome,
        bumped: Vec<IoId>,
        now: SimTime,
    ) {
        // Bumped IOs get a late EBUSY: fail their ops over.
        self.handle_bumped(node_id, bumped, now);
        match outcome {
            ReadOutcome::CacheHit { latency } => {
                // Mid-plan cache hits continue the walk; standalone reads
                // complete.
                let more_steps = self.ops[op].attempts[attempt]
                    .plan
                    .as_ref()
                    .is_some_and(|p| self.ops[op].attempts[attempt].step < p.len());
                if more_steps {
                    self.q.schedule(now + latency, Ev::PlanStep { op, attempt });
                } else {
                    self.q
                        .schedule(now + latency, Ev::LocalDone { op, attempt });
                }
            }
            ReadOutcome::Busy {
                predicted_wait,
                resource,
                ticks,
            } => {
                self.schedule_ticks(node_id, ticks, now);
                let delay = self.net_delay_node(node_id, now) + Duration::from_micros(5);
                self.q.schedule(
                    now + delay,
                    Ev::Reply {
                        op,
                        attempt,
                        result: TryResult::Busy {
                            wait: predicted_wait,
                            resource,
                        },
                    },
                );
            }
            ReadOutcome::Submitted { io, ticks } => {
                self.ops[op].attempts[attempt].io = Some(io);
                self.io_ctx
                    .insert((node_id, io), IoCtx::Get { op, attempt });
                self.schedule_ticks(node_id, ticks, now);
            }
        }
    }

    fn schedule_ticks(&mut self, node: usize, ticks: Ticks, now: SimTime) {
        if let Some(s) = ticks.disk {
            self.on_started(node, s.id, now);
            self.q.schedule(s.done_at, Ev::DiskTick { node });
        }
        for sc in ticks.ssd {
            self.q.schedule(
                sc.done_at,
                Ev::SsdTick {
                    node,
                    key: sc.key,
                    channel: sc.channel,
                    chip: sc.chip,
                    busy: sc.busy,
                },
            );
        }
    }

    /// Begin-execution hook: drives tied-request revocation.
    fn on_started(&mut self, node: usize, id: IoId, now: SimTime) {
        if !matches!(self.cfg.strategy, Strategy::Tied { .. }) {
            return;
        }
        let Some(&IoCtx::Get { op, attempt }) = self.io_ctx.get(&(node, id)) else {
            return;
        };
        if self.ops[op].done {
            return;
        }
        // Only the first attempt to begin execution wins the tie; if a
        // revocation is already in flight either way, do nothing (both
        // cancelling each other would orphan the op).
        if self.ops[op].attempts.iter().any(|a| a.resolved) {
            return;
        }
        let other = 1 - attempt;
        let Some(other_att) = self.ops[op].attempts.get(other) else {
            return;
        };
        if let Some(other_io) = other_att.io {
            let other_node = other_att.node;
            let delay = self.net_delay_node(other_node, now);
            self.q.schedule(
                now + delay,
                Ev::TiedCancel {
                    node: other_node,
                    io: other_io,
                },
            );
            self.ops[op].attempts[other].resolved = true;
        }
    }

    fn disk_tick(&mut self, node: usize, now: SimTime) {
        let out = self.nodes[node].on_disk_tick(now);
        if let Some(next) = out.next {
            self.on_started(node, next.id, now);
            self.q.schedule(next.done_at, Ev::DiskTick { node });
        }
        self.io_done(node, out.done.io, now);
    }

    fn ssd_tick(
        &mut self,
        node: usize,
        key: SubIoKey,
        channel: usize,
        chip: usize,
        busy: Duration,
        now: SimTime,
    ) {
        if let Some(done) = self.nodes[node].on_ssd_tick(key, channel, chip, busy, now) {
            self.io_done(node, done.io, now);
        }
    }

    fn io_done(&mut self, node: usize, io: IoId, now: SimTime) {
        match self.io_ctx.remove(&(node, io)) {
            Some(IoCtx::Get { op, attempt }) => {
                // Engine mode: continue the lookup plan until it runs dry.
                let more_steps = self.ops[op].attempts[attempt]
                    .plan
                    .as_ref()
                    .is_some_and(|p| self.ops[op].attempts[attempt].step < p.len());
                if more_steps && !self.ops[op].done {
                    self.engine_step(op, attempt, now);
                } else {
                    self.q.schedule(now, Ev::LocalDone { op, attempt });
                }
            }
            Some(IoCtx::Noise { stream, node, idx }) => {
                // Keep the noise slot occupied until the burst ends.
                if self.burst_active(stream, node, idx, now) {
                    self.q.schedule(now, Ev::NoiseIo { stream, node, idx });
                }
            }
            Some(IoCtx::Background) | None => {}
        }
    }

    fn local_done(&mut self, op: usize, attempt: usize, now: SimTime) {
        let node = self.ops[op].attempts[attempt].node;
        if self.down[node] {
            // The node crashed after serving the IO but before replying.
            self.crashed_reply(op, attempt, now);
            return;
        }
        let ready = self.nodes[node].cpu_post(now);
        let delay = self.net_delay_node(node, now);
        // Piggyback the server's current IO backlog on the reply
        // (C3-style feedback; other strategies ignore it).
        let server_queue = self.nodes[node].disk_occupancy();
        self.q.schedule(
            ready + delay,
            Ev::Reply {
                op,
                attempt,
                result: TryResult::Ok { server_queue },
            },
        );
    }

    // ------------------------------------------------------------------
    // Strategy reactions.
    // ------------------------------------------------------------------

    fn reply(&mut self, op: usize, attempt: usize, result: TryResult, now: SimTime) {
        let client = self.ops[op].client;
        let node = self.ops[op].attempts[attempt].node;
        if self.clients[client].outstanding[node] > 0 {
            self.clients[client].outstanding[node] -= 1;
        }
        self.ops[op].attempts[attempt].resolved = true;
        // Per-replica circuit-breaker feedback (late replies still count:
        // the breaker tracks replica health, not op outcomes). Probe tries
        // use the probe-aware edges: only a *successful* probe may close a
        // tripped breaker, and a rejected probe re-opens it — a gray window
        // flapping faster than the cooldown can no longer oscillate the
        // breaker closed.
        if !self.breakers.is_empty() {
            let probe = self.ops[op].attempts[attempt].probe;
            match result {
                TryResult::Ok { .. } => {
                    if probe {
                        self.breakers[node].on_probe_success(now);
                    } else {
                        self.breakers[node].on_success();
                    }
                }
                TryResult::Busy { .. } | TryResult::Crashed => {
                    if probe {
                        self.breakers[node].on_probe_failure(now);
                    } else {
                        self.breakers[node].on_failure(now);
                    }
                }
            }
        }
        // Adaptive latency feedback.
        if let Strategy::Snitch { alpha } = self.cfg.strategy {
            let sample = now.saturating_since(self.ops[op].started).as_secs_f64() * 1e9;
            let e = &mut self.clients[client].ewma[node];
            // mitt-lint: allow(T002, "0.0 is the exact cold-start sentinel for an empty EWMA, never the result of arithmetic")
            *e = if *e == 0.0 {
                sample
            } else {
                alpha * sample + (1.0 - alpha) * *e
            };
        }
        if matches!(self.cfg.strategy, Strategy::C3) {
            let sample = now.saturating_since(self.ops[op].started).as_secs_f64() * 1e9;
            let e = &mut self.clients[client].ewma[node];
            // mitt-lint: allow(T002, "0.0 is the exact cold-start sentinel for an empty EWMA, never the result of arithmetic")
            *e = if *e == 0.0 {
                sample
            } else {
                0.3 * sample + 0.7 * *e
            };
            if let TryResult::Ok { server_queue } = result {
                let q = &mut self.clients[client].qhat[node];
                *q = 0.3 * server_queue as f64 + 0.7 * *q;
            }
        }
        // Deadline auto-tuning feedback.
        let was_busy = matches!(result, TryResult::Busy { .. });
        if let Some(t) = self.clients[client].tuner.as_mut() {
            t.record(was_busy);
        }
        if self.ops[op].done {
            return;
        }
        match result {
            TryResult::Ok { .. } => self.complete_op(op, attempt, now),
            TryResult::Busy { wait, resource } => {
                self.result.ebusy += 1;
                self.tsl.record_ebusy(now, resource);
                self.ops[op].busy_waits.push((node, wait));
                // A rejection issued while the replica sat inside a gray or
                // correlated fault window gets a cluster-level attribution
                // naming the window — these causes have no node-side
                // counterpart (the node blames its own queue), so the
                // cluster counts them. Purely observational: no RNG, and
                // nothing emitted when tracing is off.
                if let Some(fc) = self.fault_handles.get(node) {
                    let fc = fc.clone();
                    if fc.gray_active(now) {
                        self.emit_cluster_attribution(
                            op,
                            Resource::GrayWindow,
                            wait,
                            node as u64,
                            true,
                            now,
                        );
                    } else if fc.correlated_active(now) {
                        self.emit_cluster_attribution(
                            op,
                            Resource::FaultWindow,
                            wait,
                            node as u64,
                            true,
                            now,
                        );
                    }
                }
                let tries = self.ops[op].attempts.len() - self.ops[op].round_base;
                if self.cfg.strategy.is_mittos() {
                    if tries < self.cfg.replication {
                        self.result.retries += 1;
                        let next_node = self.next_replica(op, tries, now);
                        self.emit_failover(op, node, next_node, now);
                        self.emit_cluster_attribution(op, resource, wait, node as u64, false, now);
                        let d = self.deadline_for(op, tries);
                        self.send_try(op, next_node, now, d);
                    } else if matches!(self.cfg.strategy, Strategy::MittOsWait { .. }) {
                        // All replicas busy: 4th try to the least-busy one,
                        // deadline disabled (§7.8.1 extension). With a
                        // breaker, suspected-dead replicas are excluded
                        // unless no candidate remains.
                        self.result.retries += 1;
                        let mut candidates = self.ops[op].busy_waits.clone();
                        if !self.breakers.is_empty() {
                            let healthy: Vec<(usize, Duration)> = candidates
                                .iter()
                                .copied()
                                .filter(|&(n, _)| self.breakers[n].state(now) != BreakerState::Open)
                                .collect();
                            if !healthy.is_empty() {
                                candidates = healthy;
                            }
                        }
                        let (best_node, _) = candidates
                            .iter()
                            .min_by_key(|&&(_, w)| w)
                            .copied()
                            .expect("at least one busy reply");
                        self.emit_failover(op, node, best_node, now);
                        self.emit_cluster_attribution(op, resource, wait, node as u64, false, now);
                        self.send_try(op, best_node, now, None);
                    } else {
                        // All tries rejected even with the deadline
                        // disabled on the last. With a backoff policy the
                        // client sits out briefly and retries a fresh
                        // round; otherwise surface an error — with
                        // P(3 nodes busy) tiny (§6) this is rare.
                        let backoff = self.cfg.resilience.map(|r| r.backoff);
                        let round = self.ops[op].backoff_round;
                        if let Some(delay) = backoff.and_then(|b| b.delay(round)) {
                            self.ops[op].backoff_round = round + 1;
                            self.ops[op].round_base = self.ops[op].attempts.len();
                            self.result.backoff_retries += 1;
                            self.result.trace.count("cluster.backoff", 1);
                            self.q.schedule(now + delay, Ev::RetryOp { op });
                        } else {
                            self.result.errors += 1;
                            self.complete_op(op, attempt, now);
                        }
                    }
                } else {
                    // Non-MittOS strategies never see EBUSY.
                    self.result.errors += 1;
                    self.complete_op(op, attempt, now);
                }
            }
            TryResult::Crashed => {
                self.result.trace.count("cluster.crash_detected", 1);
                if self.ops[op].attempts.iter().any(|a| !a.resolved) {
                    // A sibling try (clone/hedge/tie) is still in flight:
                    // let it win.
                    return;
                }
                // A crash is only ever an injected fault; no node-side
                // Reject exists, so the cluster attributes (and counts) it.
                self.emit_cluster_attribution(
                    op,
                    Resource::FaultWindow,
                    Duration::MAX,
                    node as u64,
                    true,
                    now,
                );
                let tries = self.ops[op].attempts.len() - self.ops[op].round_base;
                if tries < self.cfg.replication {
                    // Connection-level failure: every strategy fails over
                    // (distinct from tail-latency timeouts), each lost try
                    // having already paid the detection delay.
                    self.result.retries += 1;
                    let next_node = self.next_replica(op, tries, now);
                    self.emit_failover(op, node, next_node, now);
                    let d = self.deadline_for(op, tries);
                    self.send_try(op, next_node, now, d);
                } else {
                    // Every replica looks dead: surface the outage.
                    self.result.errors += 1;
                    self.complete_op(op, attempt, now);
                }
            }
        }
    }

    /// Picks the replica for retry round `tries`, skipping replicas whose
    /// circuit breaker is open. Falls back to the plain rotation when every
    /// candidate is open — liveness beats the breaker.
    fn next_replica(&mut self, op: usize, tries: usize, now: SimTime) -> usize {
        let replicas = self.ops[op].replicas.clone();
        let default = replicas[tries % replicas.len()];
        if self.breakers.is_empty() {
            return default;
        }
        for i in 0..replicas.len() {
            let cand = replicas[(tries + i) % replicas.len()];
            if self.breakers[cand].allow(now) {
                if cand != default {
                    // The breaker vetoed the rotation's choice: an
                    // attribution with no node-side counterpart, so the
                    // cluster counts it too.
                    self.emit_cluster_attribution(
                        op,
                        Resource::Breaker,
                        Duration::MAX,
                        default as u64,
                        true,
                        now,
                    );
                }
                return cand;
            }
        }
        default
    }

    /// A backoff delay expired: issue a fresh fast-reject round.
    fn retry_op(&mut self, op: usize, now: SimTime) {
        if self.ops[op].done {
            return;
        }
        self.result.retries += 1;
        let node = self.next_replica(op, 0, now);
        let d = self.deadline_for(op, 0);
        self.send_try(op, node, now, d);
    }

    /// Records a cluster-side SLO attribution directly after the event it
    /// explains (Failover, Crashed verdict, breaker veto, hedge). `bump`
    /// controls the per-resource counter: busy-triggered failovers
    /// re-attribute a rejection the node already counted, so they record
    /// the event only; causes with no node-side counterpart count here.
    fn emit_cluster_attribution(
        &mut self,
        op: usize,
        resource: Resource,
        predicted_wait: Duration,
        detail: u64,
        bump: bool,
        now: SimTime,
    ) {
        if !self.result.trace.is_enabled() {
            return;
        }
        self.result.trace.emit(
            now,
            Subsystem::Cluster,
            EventKind::Attribution {
                io: op as u64,
                resource,
                predicted_wait,
                detail,
            },
        );
        if bump {
            self.result.trace.count(resource.counter(), 1);
        }
    }

    /// Records an EBUSY-triggered replica switch in the trace.
    fn emit_failover(&mut self, op: usize, from: usize, to: usize, now: SimTime) {
        self.result.trace.count("cluster.failover", 1);
        self.result.trace.emit(
            now,
            Subsystem::Cluster,
            EventKind::Failover {
                op: op as u64,
                from: from as u32,
                to: to as u32,
            },
        );
    }

    fn complete_op(&mut self, op: usize, served_attempt: usize, now: SimTime) {
        if !self.cfg.replication_lag.is_zero() {
            let key = self.ops[op].key;
            let client = self.ops[op].client;
            if self.ops[op].is_write {
                // The write is visible now at the serving replica and
                // `replication_lag` later at the others.
                let served_by = self.ops[op].attempts[served_attempt].node;
                for &r in &self.ops[op].replicas.clone() {
                    let visible = if r == served_by {
                        now
                    } else {
                        now + self.cfg.replication_lag
                    };
                    self.fresh_at.insert((r, key), visible);
                }
                self.clients[client].last_write.insert(key, now);
            } else if self.clients[client].last_write.contains_key(&key) {
                let served_by = self.ops[op].attempts[served_attempt].node;
                if self
                    .fresh_at
                    .get(&(served_by, key))
                    .is_some_and(|&visible| visible > now)
                {
                    self.result.stale_reads += 1;
                }
            }
        }
        self.ops[op].done = true;
        {
            let _t = self.prof.phase(Phase::TraceEmit);
            self.result.trace.emit(
                now,
                Subsystem::Cluster,
                EventKind::SpanEnd {
                    name: "op",
                    id: op as u64,
                },
            );
        }
        let latency = now.saturating_since(self.ops[op].started);
        self.result.get_latencies.record(latency);
        self.tsl.observe_get(now, latency);
        self.result.completion_times.push(now);
        let user = self.ops[op].user;
        self.users[user].remaining -= 1;
        if self.users[user].remaining == 0 {
            let ulat = now.saturating_since(self.users[user].started);
            self.result.user_latencies.record(ulat);
            self.result.ops += 1;
            self.completed_users += 1;
            let client = self.ops[op].client;
            self.q
                .schedule(now + self.cfg.think_time, Ev::ClientIssue { client });
        }
    }

    fn hedge_fire(&mut self, op: usize, now: SimTime) {
        if self.ops[op].done || self.ops[op].attempts.len() > 1 {
            return;
        }
        self.result.retries += 1;
        // Send the hedge to a different replica.
        let first = self.ops[op].attempts[0].node;
        let next = self.ops[op]
            .replicas
            .iter()
            .copied()
            .find(|&r| r != first)
            .unwrap_or(first);
        self.result.trace.count("cluster.hedge", 1);
        self.result.trace.emit(
            now,
            Subsystem::Cluster,
            EventKind::Hedge {
                op: op as u64,
                to: next as u32,
            },
        );
        // A hedge fires on client-side tail suspicion: the only resource
        // visible from outside the node is the request's network path.
        self.emit_cluster_attribution(op, Resource::NetHop, Duration::MAX, first as u64, true, now);
        self.send_try(op, next, now, None);
    }

    fn timeout_fire(&mut self, op: usize, attempt: usize, now: SimTime) {
        if self.ops[op].done || self.ops[op].attempts[attempt].resolved {
            return;
        }
        // Application-level cancel: ignore whatever that try returns.
        self.ops[op].attempts[attempt].resolved = true;
        if let Some(io) = self.ops[op].attempts[attempt].io {
            let node = self.ops[op].attempts[attempt].node;
            self.io_ctx.remove(&(node, io));
        }
        match self.cfg.strategy {
            Strategy::NosqlProfile {
                failover: false, ..
            } => {
                // Table 1's surprise: three of six systems surface a read
                // error instead of failing over.
                self.result.errors += 1;
                self.complete_op(op, attempt, now);
            }
            Strategy::NosqlProfile {
                timeout,
                failover: true,
            }
            | Strategy::AppTimeout { timeout } => {
                self.result.retries += 1;
                let tries = self.ops[op].attempts.len();
                let next = self.ops[op].replicas[tries % self.ops[op].replicas.len()];
                self.send_try(op, next, now, None);
                let new_attempt = self.ops[op].attempts.len() - 1;
                // The final try never times out (avoids user-visible
                // errors, §7.2).
                if tries + 1 < self.cfg.replication {
                    self.q.schedule(
                        now + timeout,
                        Ev::TimeoutFire {
                            op,
                            attempt: new_attempt,
                        },
                    );
                }
            }
            _ => {}
        }
    }

    fn tied_send(&mut self, op: usize, now: SimTime) {
        if self.ops[op].done || self.ops[op].attempts.len() > 1 {
            return;
        }
        // If the first try's IO already began execution, skip the clone.
        let first = self.ops[op].attempts[0].node;
        let next = self.ops[op]
            .replicas
            .iter()
            .copied()
            .find(|&r| r != first)
            .unwrap_or(first);
        self.send_try(op, next, now, None);
    }

    // ------------------------------------------------------------------
    // Noise and background load.
    // ------------------------------------------------------------------

    fn burst_of(&self, stream: usize, node: usize, idx: usize) -> Option<NoiseBurst> {
        self.cfg
            .noise
            .get(stream)
            .and_then(|ns| ns.schedules.get(node))
            .and_then(|bursts| bursts.get(idx))
            .copied()
    }

    fn burst_active(&self, stream: usize, node: usize, idx: usize, now: SimTime) -> bool {
        self.burst_of(stream, node, idx)
            .is_some_and(|b| now < b.end())
    }

    fn noise_burst(&mut self, stream: usize, node: usize, idx: usize, now: SimTime) {
        let Some(burst) = self.burst_of(stream, node, idx) else {
            return;
        };
        let kind = self.cfg.noise[stream].kind.clone();
        match kind {
            NoiseKind::CacheSwap => {
                self.nodes[node].swap_out_pct(burst.intensity, now);
            }
            NoiseKind::DiskReads { .. } | NoiseKind::SsdWrites { .. } => {
                for _ in 0..burst.intensity {
                    self.q.schedule(now, Ev::NoiseIo { stream, node, idx });
                }
            }
        }
    }

    fn noise_io(&mut self, stream: usize, node: usize, idx: usize, now: SimTime) {
        if !self.burst_active(stream, node, idx, now) {
            return;
        }
        let kind = self.cfg.noise[stream].kind.clone();
        let noise_owner = ProcessId(2000 + node as u32);
        match kind {
            NoiseKind::DiskReads {
                len,
                class,
                priority,
            } => {
                let offset = self.noise_rng.range_u64(0, self.usable);
                let req = ReadReq {
                    offset,
                    len,
                    deadline: None,
                    owner: noise_owner,
                    class,
                    priority,
                    medium: Medium::Disk,
                    via_cache: false,
                };
                let sub = self.nodes[node].submit_read(&req, now);
                self.handle_bumped(node, sub.bumped, now);
                if let ReadOutcome::Submitted { io, ticks } = sub.outcome {
                    self.io_ctx
                        .insert((node, io), IoCtx::Noise { stream, node, idx });
                    self.schedule_ticks(node, ticks, now);
                }
            }
            NoiseKind::SsdWrites { len } => {
                let offset = self.noise_rng.range_u64(0, self.usable);
                let req = ReadReq {
                    offset,
                    len,
                    deadline: None,
                    owner: noise_owner,
                    class: IoClass::BestEffort,
                    priority: 4,
                    medium: Medium::Ssd,
                    via_cache: false,
                };
                match self.nodes[node].submit_write(&req, now) {
                    WriteOutcome::Submitted(sub) => {
                        self.handle_bumped(node, sub.bumped, now);
                        if let ReadOutcome::Submitted { io, ticks } = sub.outcome {
                            self.io_ctx
                                .insert((node, io), IoCtx::Noise { stream, node, idx });
                            self.schedule_ticks(node, ticks, now);
                        }
                    }
                    WriteOutcome::Buffered { latency } => {
                        // NVRAM absorbed it; keep the pressure up.
                        self.q
                            .schedule(now + latency, Ev::NoiseIo { stream, node, idx });
                    }
                }
            }
            NoiseKind::CacheSwap => {}
        }
    }

    fn bg_io(&mut self, node: usize, stream: usize, idx: usize, now: SimTime) {
        let ios = &self.cfg.background[stream].1;
        let Some(io) = ios.get(idx).copied() else {
            return;
        };
        if let Some(next) = ios.get(idx + 1) {
            self.q.schedule(
                next.at,
                Ev::BgIo {
                    node,
                    stream,
                    idx: idx + 1,
                },
            );
        }
        let req = ReadReq {
            offset: io.offset % self.usable,
            len: io.len,
            deadline: None,
            owner: ProcessId(3000 + stream as u32),
            class: IoClass::BestEffort,
            priority: 5,
            medium: self.cfg.medium,
            via_cache: false,
        };
        if io.is_read {
            let sub = self.nodes[node].submit_read(&req, now);
            self.handle_bumped(node, sub.bumped, now);
            if let ReadOutcome::Submitted { io, ticks } = sub.outcome {
                self.io_ctx.insert((node, io), IoCtx::Background);
                self.schedule_ticks(node, ticks, now);
            }
        } else if let WriteOutcome::Submitted(sub) = self.nodes[node].submit_write(&req, now) {
            self.handle_bumped(node, sub.bumped, now);
            if let ReadOutcome::Submitted { io, ticks } = sub.outcome {
                self.io_ctx.insert((node, io), IoCtx::Background);
                self.schedule_ticks(node, ticks, now);
            }
        }
    }

    // ------------------------------------------------------------------
    // Fault injection.
    // ------------------------------------------------------------------

    /// A planned fault window opens. The shared clock answers most queries
    /// (service multipliers, stalls, caps, distortions) from the device and
    /// predictor layers; only the cluster-level kinds — crash, thrash —
    /// need driver action here.
    fn fault_start(&mut self, idx: usize, now: SimTime) {
        let ev = self.cfg.faults.events[idx].clone();
        self.fault_clock.record_injection();
        self.result.trace.count("cluster.fault_injected", 1);
        if ev.scope.is_correlated() {
            self.result.trace.count("cluster.fault_correlated", 1);
        }
        if ev.kind.is_gray() {
            self.result.trace.count("cluster.fault_gray", 1);
        }
        self.result.trace.emit(
            now,
            Subsystem::Cluster,
            EventKind::FaultStart {
                fault: idx as u64,
                name: ev.kind.name(),
            },
        );
        match ev.kind {
            FaultKind::NodeCrash => {
                for n in ev.scope.node_indices(self.cfg.nodes) {
                    self.node_crash(n, now);
                }
            }
            FaultKind::CacheThrash { evict_pct, period } => {
                self.apply_thrash(idx, evict_pct, now);
                if !period.is_zero() {
                    self.q.schedule(now + period, Ev::ThrashTick { idx });
                }
            }
            _ => {}
        }
    }

    /// A fault window closes; crashed nodes restart. The restart model is
    /// a process restart with warm device state — the gentlest case, and
    /// the outage still shows in the latency tail.
    fn fault_end(&mut self, idx: usize, now: SimTime) {
        let ev = self.cfg.faults.events[idx].clone();
        self.result.trace.emit(
            now,
            Subsystem::Cluster,
            EventKind::FaultEnd {
                fault: idx as u64,
                name: ev.kind.name(),
            },
        );
        if matches!(ev.kind, FaultKind::NodeCrash) {
            for n in ev.scope.node_indices(self.cfg.nodes) {
                self.down[n] = false;
            }
        }
    }

    /// Marks a node down and orphans its in-flight client IOs: their
    /// replies become `Crashed` verdicts after the detection timeout. The
    /// orphan sweep is sorted by IO id so the schedule stays deterministic
    /// (the context map iterates in arbitrary order).
    fn node_crash(&mut self, node: usize, now: SimTime) {
        self.down[node] = true;
        let mut orphans: Vec<(IoId, usize, usize)> = self
            .io_ctx
            .iter()
            .filter_map(|(&(n, io), ctx)| match *ctx {
                IoCtx::Get { op, attempt } if n == node => Some((io, op, attempt)),
                _ => None,
            })
            .collect();
        orphans.sort_by_key(|&(io, _, _)| io);
        for (io, op, attempt) in orphans {
            self.io_ctx.remove(&(node, io));
            self.crashed_reply(op, attempt, now);
        }
    }

    /// Force-evicts a slice of resident pages on the thrash target(s).
    fn apply_thrash(&mut self, idx: usize, pct: u32, now: SimTime) {
        let scope = self.cfg.faults.events[idx].scope.clone();
        for n in scope.node_indices(self.cfg.nodes) {
            self.nodes[n].swap_out_pct(pct, now);
        }
    }

    /// Re-applies an eviction storm every `period` while its window lasts.
    fn thrash_tick(&mut self, idx: usize, now: SimTime) {
        let ev = self.cfg.faults.events[idx].clone();
        if !ev.active_at(now) {
            return;
        }
        if let FaultKind::CacheThrash { evict_pct, period } = ev.kind {
            self.apply_thrash(idx, evict_pct, now);
            if !period.is_zero() {
                self.q.schedule(now + period, Ev::ThrashTick { idx });
            }
        }
    }

    /// Folds fault and resilience counters into the result; called on both
    /// run paths (the event loop and the manual watch-node loop).
    fn finalize(&mut self) {
        let _fold = self.prof.phase(Phase::StatsFold);
        self.result.finished_at = self.q.now();
        for b in &self.breakers {
            self.result.breaker_opens += b.opens();
        }
        for (node, b) in self.breakers.iter().enumerate() {
            self.result
                .breaker_transitions
                .extend(b.transitions().iter().map(|&tr| (node, tr)));
        }
        if self.fault_clock.is_enabled() {
            self.result.injected_faults = self.fault_clock.injected();
            self.result.dropped_messages = self.fault_clock.dropped_messages();
            self.result.distorted_predictions = self.fault_clock.distorted_predictions();
            self.result.degraded_ios = self.fault_clock.degraded_ios();
        }
        if self.tsl.is_enabled() {
            let now = self.q.now();
            // Breaker transition logs are drained post-hoc (just above):
            // back-fill their windows so timelines carry open/close counts.
            for &(node, tr) in &self.result.breaker_transitions {
                self.tsl
                    .record_breaker_transition(node as u32, tr.at, u64::from(tr.to.code()));
            }
            self.tsl.finish(now);
            // An alert fired by the final (partial) window still deserves
            // its snapshot.
            self.tsl_tick(now);
        }
        self.prof.finish(self.q.now());
    }

    /// Collects the watch-node EBUSY timeline into the result after a run.
    /// (Occupancy samples are collected live; EBUSY times live on the
    /// node.)
    pub fn watch_node_ebusy(&self) -> Vec<SimTime> {
        match self.cfg.watch_node {
            Some(n) => self.nodes[n].ebusy_times().to_vec(),
            None => Vec::new(),
        }
    }
}

/// Convenience: build, run, and return results, folding the watch-node
/// EBUSY timeline into the result.
pub fn run_experiment(cfg: ExperimentConfig) -> ExperimentResult {
    let watch_node = cfg.watch_node;
    let sim = ClusterSim::new(cfg);
    if watch_node.is_some() {
        // Run manually so we can read node state afterwards.
        let mut sim = sim;
        while sim.completed_users < sim.target_users {
            let Some((now, ev)) = sim.q.pop() else {
                panic!("event queue drained prematurely");
            };
            sim.handle(now, ev);
        }
        sim.finalize();
        let ebusy = sim.watch_node_ebusy();
        let mut result = sim.result;
        if let Some(w) = &mut result.watch {
            w.ebusy_times = ebusy;
        }
        result
    } else {
        sim.run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mitt_workload::rotating_schedule;

    fn quick(strategy: Strategy) -> ExperimentConfig {
        let mut cfg = ExperimentConfig::micro(NodeConfig::disk_cfq(), strategy);
        cfg.ops_per_client = 60;
        cfg
    }

    #[test]
    fn base_strategy_completes_all_ops() {
        let res = run_experiment(quick(Strategy::Base));
        assert_eq!(res.ops, 60);
        assert_eq!(res.errors, 0);
        // Disk reads over the network: a handful of ms each.
        let mut lat = res.user_latencies;
        let p50 = lat.percentile(50.0);
        assert!(
            (Duration::from_millis(2)..Duration::from_millis(30)).contains(&p50),
            "p50 = {p50}"
        );
    }

    #[test]
    fn mittos_on_quiet_cluster_rarely_rejects() {
        let res = run_experiment(quick(Strategy::MittOs {
            deadline: Duration::from_millis(20),
        }));
        assert_eq!(res.ops, 60);
        assert_eq!(res.errors, 0);
        assert!(res.ebusy <= 3, "quiet cluster, got {} EBUSYs", res.ebusy);
    }

    #[test]
    fn mittos_fails_over_under_rotating_noise() {
        let mut cfg = quick(Strategy::MittOs {
            deadline: Duration::from_millis(20),
        });
        cfg.ops_per_client = 150;
        cfg.noise = vec![NoiseStream {
            kind: NoiseKind::DiskReads {
                len: 1 << 20,
                class: IoClass::BestEffort,
                priority: 4,
            },
            schedules: rotating_schedule(3, Duration::from_secs(1), Duration::from_secs(120), 4),
        }];
        let res = run_experiment(cfg);
        assert_eq!(res.ops, 150);
        assert!(res.ebusy > 10, "noisy node must reject: {}", res.ebusy);
        assert!(res.retries > 10, "rejections must fail over");
        assert_eq!(res.errors, 0, "two quiet replicas always exist");
    }

    #[test]
    fn hedged_retries_slow_requests() {
        let mut cfg = quick(Strategy::Hedged {
            after: Duration::from_millis(13),
        });
        cfg.noise = vec![NoiseStream {
            kind: NoiseKind::DiskReads {
                len: 1 << 20,
                class: IoClass::BestEffort,
                priority: 4,
            },
            schedules: rotating_schedule(3, Duration::from_secs(1), Duration::from_secs(60), 4),
        }];
        let res = run_experiment(cfg);
        assert_eq!(res.ops, 60);
        assert!(res.retries > 0, "hedges must fire under noise");
    }

    #[test]
    fn apptimeout_completes_with_failover() {
        let mut cfg = quick(Strategy::AppTimeout {
            timeout: Duration::from_millis(13),
        });
        cfg.noise = vec![NoiseStream {
            kind: NoiseKind::DiskReads {
                len: 1 << 20,
                class: IoClass::BestEffort,
                priority: 4,
            },
            schedules: rotating_schedule(3, Duration::from_secs(1), Duration::from_secs(60), 4),
        }];
        let res = run_experiment(cfg);
        assert_eq!(res.ops, 60);
        assert_eq!(res.errors, 0);
    }

    #[test]
    fn clone_and_tied_complete() {
        for strategy in [
            Strategy::Clone2,
            Strategy::Tied {
                delay: Duration::from_millis(1),
            },
        ] {
            let res = run_experiment(quick(strategy));
            assert_eq!(res.ops, 60);
            assert_eq!(res.errors, 0);
        }
    }

    #[test]
    fn snitch_and_c3_complete() {
        for strategy in [Strategy::Snitch { alpha: 0.3 }, Strategy::C3] {
            let res = run_experiment(quick(strategy));
            assert_eq!(res.ops, 60);
        }
    }

    #[test]
    fn scale_factor_amplifies_tail() {
        let mk = |sf: usize| {
            let mut cfg = quick(Strategy::Base);
            cfg.seed = 7;
            cfg.scale_factor = sf;
            cfg.ops_per_client = 80;
            cfg.nodes = 6;
            run_experiment(cfg)
        };
        let mut sf1 = mk(1);
        let mut sf5 = mk(5);
        assert_eq!(sf5.ops, 80);
        // A user request waiting on 5 parallel gets has a worse median
        // than a single get.
        assert!(
            sf5.user_latencies.percentile(50.0) > sf1.user_latencies.percentile(50.0),
            "SF=5 p50 {} vs SF=1 p50 {}",
            sf5.user_latencies.percentile(50.0),
            sf1.user_latencies.percentile(50.0)
        );
    }

    #[test]
    fn cache_cluster_serves_from_memory() {
        let mut cfg = ExperimentConfig::micro(
            NodeConfig::cached_disk(),
            Strategy::MittOs {
                deadline: Duration::from_millis(1),
            },
        );
        cfg.ops_per_client = 60;
        cfg.record_count = 5_000;
        cfg.via_cache = true;
        cfg.preload_cache = true;
        let res = run_experiment(cfg);
        assert_eq!(res.ops, 60);
        // Everything preloaded: sub-ms latencies (two hops + hit latency).
        let mut lat = res.user_latencies;
        let p90 = lat.percentile(90.0);
        assert!(p90 < Duration::from_millis(2), "p90 = {p90}");
    }

    #[test]
    fn write_workload_uses_nvram() {
        let mut cfg = quick(Strategy::Base);
        cfg.write_fraction = 1.0;
        let res = run_experiment(cfg);
        assert_eq!(res.ops, 60);
        let mut lat = res.user_latencies;
        // NVRAM commit + two hops: ~0.7ms, far below disk latency.
        assert!(lat.percentile(95.0) < Duration::from_millis(2));
    }

    #[test]
    fn determinism_same_seed_same_results() {
        let a = run_experiment(quick(Strategy::MittOs {
            deadline: Duration::from_millis(20),
        }));
        let b = run_experiment(quick(Strategy::MittOs {
            deadline: Duration::from_millis(20),
        }));
        assert_eq!(a.user_latencies.samples(), b.user_latencies.samples());
        assert_eq!(a.ebusy, b.ebusy);
    }

    #[test]
    fn ssd_cluster_runs() {
        let mut cfg = ExperimentConfig::micro(
            NodeConfig::ssd(),
            Strategy::MittOs {
                deadline: Duration::from_millis(2),
            },
        );
        cfg.medium = Medium::Ssd;
        cfg.ops_per_client = 60;
        let res = run_experiment(cfg);
        assert_eq!(res.ops, 60);
        let mut lat = res.user_latencies;
        // SSD read + 2 hops: ~1ms.
        assert!(lat.percentile(90.0) < Duration::from_millis(3));
    }

    #[test]
    fn lsm_engine_cluster_completes_gets() {
        let mut cfg = quick(Strategy::MittOs {
            deadline: Duration::from_millis(25),
        });
        cfg.engine = Some(mitt_lsm::LsmConfig {
            levels: 2,
            level_ratio: 6,
            table_cache_capacity: 16,
            ..mitt_lsm::LsmConfig::default()
        });
        cfg.record_count = 100_000;
        let res = run_experiment(cfg);
        assert_eq!(res.ops, 60);
        assert_eq!(res.errors, 0);
        // Engine lookups cost 1-2 block reads: latencies stay disk-scale.
        let mut lat = res.user_latencies;
        let p50 = lat.percentile(50.0);
        assert!(
            (Duration::from_millis(3)..Duration::from_millis(40)).contains(&p50),
            "p50 = {p50}"
        );
    }

    #[test]
    fn lsm_engine_ebusy_propagates_to_coordinator() {
        let mut cfg = quick(Strategy::MittOs {
            deadline: Duration::from_millis(15),
        });
        cfg.engine = Some(mitt_lsm::LsmConfig::default());
        cfg.record_count = 100_000;
        cfg.ops_per_client = 120;
        cfg.noise = vec![NoiseStream {
            kind: NoiseKind::DiskReads {
                len: 1 << 20,
                class: IoClass::BestEffort,
                priority: 4,
            },
            schedules: rotating_schedule(3, Duration::from_secs(1), Duration::from_secs(120), 4),
        }];
        let res = run_experiment(cfg);
        assert_eq!(res.ops, 120);
        assert!(
            res.ebusy > 10,
            "engine reads must be rejected: {}",
            res.ebusy
        );
        assert_eq!(res.errors, 0, "coordinator always finds a quiet replica");
    }

    #[test]
    fn lsm_engine_writes_flush_in_background() {
        let mut cfg = quick(Strategy::Base);
        cfg.engine = Some(mitt_lsm::LsmConfig {
            memtable_budget: 32 * 1024,
            table_size: 256 * 1024,
            ..mitt_lsm::LsmConfig::default()
        });
        cfg.record_count = 100_000;
        cfg.write_fraction = 1.0;
        cfg.ops_per_client = 300;
        let res = run_experiment(cfg);
        assert_eq!(res.ops, 300);
        // Puts commit at memtable speed despite background flushes.
        let mut lat = res.user_latencies;
        assert!(lat.percentile(95.0) < Duration::from_millis(2));
    }

    #[test]
    fn mmap_btree_walks_complete_from_cache() {
        let mut cfg = ExperimentConfig::micro(
            NodeConfig::cached_disk(),
            Strategy::MittOs {
                deadline: Duration::from_micros(100),
            },
        );
        cfg.ops_per_client = 60;
        cfg.record_count = 20_000;
        cfg.mmap_btree = Some(crate::mmapdb::BtreeConfig {
            fanout: 64,
            ..crate::mmapdb::BtreeConfig::default()
        });
        cfg.preload_cache = true;
        let res = run_experiment(cfg);
        assert_eq!(res.ops, 60);
        assert_eq!(res.errors, 0);
        // Fully resident tree: three addrcheck'd memory touches + hops.
        let mut lat = res.user_latencies;
        assert!(lat.percentile(90.0) < Duration::from_millis(2));
    }

    #[test]
    fn mmap_btree_swapped_pages_trigger_failover() {
        let mut cfg = ExperimentConfig::micro(
            NodeConfig::cached_disk(),
            Strategy::MittOs {
                deadline: Duration::from_micros(100),
            },
        );
        cfg.ops_per_client = 200;
        cfg.record_count = 20_000;
        cfg.mmap_btree = Some(crate::mmapdb::BtreeConfig {
            fanout: 64,
            ..crate::mmapdb::BtreeConfig::default()
        });
        cfg.preload_cache = true;
        // Swap-out bursts on node 0 keep evicting pages mid-walk.
        let mut schedules = vec![Vec::new(); 3];
        schedules[0] = (0..2400)
            .map(|i| NoiseBurst {
                start: SimTime::ZERO + Duration::from_millis(250) * i,
                duration: Duration::from_millis(1),
                intensity: 20,
            })
            .collect();
        cfg.noise = vec![NoiseStream {
            kind: NoiseKind::CacheSwap,
            schedules,
        }];
        let res = run_experiment(cfg);
        assert_eq!(res.ops, 200);
        assert!(
            res.ebusy > 10,
            "swapped pages must EBUSY mid-walk: {}",
            res.ebusy
        );
        assert_eq!(res.errors, 0);
        let mut lat = res.get_latencies;
        assert!(
            lat.percentile(95.0) < Duration::from_millis(3),
            "failover keeps the walk at memory speed: {}",
            lat.percentile(95.0)
        );
    }

    #[test]
    fn mittoswait_retries_least_busy_replica_when_all_reject() {
        // All three replicas severely contended: plain MittOS disables the
        // deadline on the 3rd try and may park behind a long queue; the
        // wait-hint variant keeps rejecting and then picks the least-busy
        // replica.
        let mk = |strategy: Strategy| {
            let mut cfg = quick(strategy);
            cfg.ops_per_client = 120;
            cfg.think_time = Duration::from_millis(5);
            let all_busy = |intensity| NoiseStream {
                kind: NoiseKind::DiskReads {
                    len: 512 << 10,
                    class: IoClass::BestEffort,
                    priority: 4,
                },
                schedules: (0..3)
                    .map(|_| {
                        vec![mitt_workload::NoiseBurst {
                            start: SimTime::ZERO,
                            duration: Duration::from_secs(600),
                            intensity,
                        }]
                    })
                    .collect(),
            };
            cfg.noise = vec![all_busy(2)];
            run_experiment(cfg)
        };
        let deadline = Duration::from_millis(10);
        let wait_res = mk(Strategy::MittOsWait { deadline });
        assert_eq!(wait_res.ops, 120);
        assert_eq!(wait_res.errors, 0);
        // With every replica contended, multi-rejection rounds must occur
        // (the 4th-try path is exercised).
        assert!(
            wait_res.ebusy as f64 > 1.5 * 120.0,
            "expected repeated rejections: {}",
            wait_res.ebusy
        );
    }

    #[test]
    fn hedges_do_not_fire_on_a_quiet_cluster() {
        let res = run_experiment(quick(Strategy::Hedged {
            after: Duration::from_millis(25),
        }));
        assert_eq!(res.ops, 60);
        // Every get finishes well under the hedge threshold: no duplicate
        // load ("limits the additional load to approximately 5%").
        assert_eq!(res.retries, 0, "no hedges on a quiet cluster");
    }

    #[test]
    fn snitch_learns_to_avoid_a_permanently_slow_replica() {
        // Node 0 is severely contended for the whole run; after warm-up,
        // snitching should route almost everything to nodes 1-2.
        let mut cfg = quick(Strategy::Snitch { alpha: 0.3 });
        cfg.ops_per_client = 300;
        cfg.think_time = Duration::from_millis(5);
        cfg.initial_replica = InitialReplica::Random;
        let mut schedules = vec![Vec::new(); 3];
        schedules[0] = vec![mitt_workload::NoiseBurst {
            start: SimTime::ZERO,
            duration: Duration::from_secs(600),
            intensity: 4,
        }];
        cfg.noise = vec![NoiseStream {
            kind: NoiseKind::DiskReads {
                len: 1 << 20,
                class: IoClass::BestEffort,
                priority: 4,
            },
            schedules,
        }];
        let mut snitch = run_experiment(cfg).get_latencies;
        // Stable busyness is the case adaptivity handles (§7.8.3): the
        // p90 should look like a quiet two-replica cluster, not the busy
        // node.
        assert!(
            snitch.percentile(90.0) < Duration::from_millis(20),
            "snitch p90 {}",
            snitch.percentile(90.0)
        );
    }

    #[test]
    fn background_streams_create_contention() {
        let mut quiet_cfg = quick(Strategy::Base);
        quiet_cfg.think_time = Duration::from_millis(5);
        let mut busy_cfg = quick(Strategy::Base);
        busy_cfg.think_time = Duration::from_millis(5);
        let spec = mitt_workload::TraceSpec::tpcc();
        let mut rng = SimRng::new(5);
        busy_cfg.background = (0..3)
            .map(|node| {
                let mut r = rng.fork();
                (node, spec.generate(Duration::from_secs(120), &mut r))
            })
            .collect();
        let mut quiet = run_experiment(quiet_cfg).get_latencies;
        let mut busy = run_experiment(busy_cfg).get_latencies;
        assert!(
            busy.percentile(95.0) > quiet.percentile(95.0),
            "background load must show up: {} vs {}",
            busy.percentile(95.0),
            quiet.percentile(95.0)
        );
    }

    #[test]
    fn monotonic_guard_cuts_failover_staleness() {
        let mk = |guard: bool| {
            let mut cfg = quick(Strategy::MittOs {
                deadline: Duration::from_millis(15),
            });
            cfg.clients = 3;
            cfg.ops_per_client = 500;
            cfg.write_fraction = 0.1;
            cfg.record_count = 1_000;
            cfg.replication_lag = Duration::from_millis(25);
            cfg.monotonic_guard = guard;
            cfg.initial_replica = InitialReplica::Random;
            cfg.think_time = Duration::from_millis(5);
            cfg.noise = vec![NoiseStream {
                kind: NoiseKind::DiskReads {
                    len: 1 << 20,
                    class: IoClass::BestEffort,
                    priority: 4,
                },
                schedules: rotating_schedule(
                    3,
                    Duration::from_secs(1),
                    Duration::from_secs(3600),
                    4,
                ),
            }];
            run_experiment(cfg)
        };
        let plain = mk(false);
        let guarded = mk(true);
        assert!(
            plain.stale_reads > 0,
            "lag + failover must create staleness"
        );
        assert!(
            guarded.stale_reads * 2 <= plain.stale_reads + 2,
            "guard should at least halve staleness: {} vs {}",
            guarded.stale_reads,
            plain.stale_reads
        );
        assert_eq!(guarded.ops, 1500);
    }

    #[test]
    fn watch_node_records_timeline() {
        let mut cfg = quick(Strategy::MittOs {
            deadline: Duration::from_millis(20),
        });
        cfg.watch_node = Some(0);
        cfg.noise = vec![NoiseStream {
            kind: NoiseKind::DiskReads {
                len: 1 << 20,
                class: IoClass::BestEffort,
                priority: 4,
            },
            schedules: rotating_schedule(3, Duration::from_secs(1), Duration::from_secs(60), 4),
        }];
        let res = run_experiment(cfg);
        let watch = res.watch.expect("watch log requested");
        assert!(!watch.occupancy.is_empty());
        assert!(!watch.ebusy_times.is_empty());
    }
}
