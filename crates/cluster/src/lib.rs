//! Replicated key-value cluster simulation over MittOS nodes.
//!
//! This crate assembles the full evaluation platform of §7: [`node::Node`]
//! models one machine (storage stack + MittOS predictors + CPU),
//! [`sim::ClusterSim`] runs N of them under closed-loop YCSB clients with
//! pluggable tail-tolerance strategies ([`sim::Strategy`]) and per-node
//! noisy-neighbor schedules ([`sim::NoiseStream`]).
//!
//! # Examples
//!
//! ```
//! use mitt_cluster::{run_experiment, ExperimentConfig, NodeConfig, Strategy};
//! use mitt_sim::Duration;
//!
//! let mut cfg = ExperimentConfig::micro(
//!     NodeConfig::disk_cfq(),
//!     Strategy::MittOs { deadline: Duration::from_millis(20) },
//! );
//! cfg.ops_per_client = 20;
//! let result = run_experiment(cfg);
//! assert_eq!(result.ops, 20);
//! assert_eq!(result.errors, 0);
//! ```

pub mod cpu;
pub mod mmapdb;
pub mod node;
pub mod nosql;
pub mod sim;
pub mod topology;

pub use cpu::{CpuConfig, CpuModel};
pub use mmapdb::{BtreeConfig, BtreePlanner, PageTouch};
pub use node::{
    AuditPair, Medium, Node, NodeConfig, ReadOutcome, ReadReq, SchedKind, Submission, WriteOutcome,
};
pub use nosql::{run_survey, surveyed_systems, NosqlSystem, SurveyRow};
pub use sim::{
    run_experiment, ClusterSim, ExperimentConfig, ExperimentResult, InitialReplica, NoiseKind,
    NoiseStream, Strategy, WatchLog, CRASH_REPLY_DELAY, RETRANSMIT_DELAY,
};
pub use topology::Topology;
