//! MongoDB-style mmap B-tree layout (§5's `addrcheck` use case).
//!
//! MongoDB maps its database file into the heap and traverses B-tree
//! on-disk pointers as plain memory dereferences — which is why the paper
//! adds `addrcheck(addr, len, deadline)`: before each dereference the
//! application asks MittCache whether the page is resident, and fails over
//! on EBUSY instead of taking a page-fault disk stall.
//!
//! [`BtreePlanner`] lays out a static B-tree over the keyspace (internal
//! nodes, leaves, records, each in its own file region) and turns a key
//! lookup into the page-touch sequence a real traversal would perform:
//! root → internal(s) → leaf → record. Upper levels are tiny and hot, so
//! the page cache keeps them resident; leaves and records carry the
//! swap-out risk.

/// Layout parameters of the mmap-ed B-tree file.
#[derive(Debug, Clone)]
pub struct BtreeConfig {
    /// Children per internal node / records per leaf.
    pub fanout: u64,
    /// Page size of every node/leaf (bytes).
    pub page_size: u32,
    /// Bytes read for the record itself.
    pub record_size: u32,
    /// File offset where the tree lives.
    pub region_offset: u64,
}

impl Default for BtreeConfig {
    fn default() -> Self {
        BtreeConfig {
            fanout: 512,
            page_size: 4096,
            record_size: 4096,
            region_offset: 0,
        }
    }
}

/// One page touch of a B-tree traversal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageTouch {
    /// File byte offset of the page.
    pub offset: u64,
    /// Bytes dereferenced.
    pub len: u32,
    /// Tree level (0 = root, `depth` = record).
    pub level: u8,
}

/// Plans the page touches of key lookups over a static tree.
#[derive(Debug, Clone)]
pub struct BtreePlanner {
    cfg: BtreeConfig,
    keyspace: u64,
    depth: u8,
    /// Byte offset where each level's node array begins.
    level_base: Vec<u64>,
}

impl BtreePlanner {
    /// Builds the layout for `keyspace` keys.
    ///
    /// # Panics
    ///
    /// Panics on an empty keyspace or a fanout < 2.
    pub fn new(cfg: BtreeConfig, keyspace: u64) -> Self {
        assert!(keyspace > 0, "empty keyspace");
        assert!(cfg.fanout >= 2, "fanout must be >= 2");
        // Levels of internal nodes + leaves needed to cover the keyspace:
        // level d indexes key / fanout^(depth - d).
        let mut depth = 1u8;
        let mut reach = cfg.fanout;
        while reach < keyspace {
            reach = reach.saturating_mul(cfg.fanout);
            depth += 1;
        }
        // Node counts per level: 1 at the root, fanout^level below it.
        let mut level_base = Vec::with_capacity(depth as usize + 1);
        let mut base = cfg.region_offset;
        for level in 0..depth {
            level_base.push(base);
            let nodes = cfg.fanout.pow(u32::from(level));
            base += nodes * u64::from(cfg.page_size);
        }
        // Record region after all node levels.
        level_base.push(base);
        BtreePlanner {
            cfg,
            keyspace,
            depth,
            level_base,
        }
    }

    /// Tree depth in node levels (root = level 0; records live below
    /// level `depth - 1`).
    pub fn depth(&self) -> u8 {
        self.depth
    }

    /// Total file bytes the layout spans.
    pub fn file_size(&self) -> u64 {
        self.level_base[self.depth as usize] - self.cfg.region_offset
            + self.keyspace * u64::from(self.cfg.record_size)
    }

    /// The page touches of looking up `key`: one node per level, then the
    /// record page.
    ///
    /// # Panics
    ///
    /// Panics if `key` is outside the keyspace.
    pub fn touches(&self, key: u64) -> Vec<PageTouch> {
        assert!(key < self.keyspace, "key {key} outside keyspace");
        let mut out = Vec::with_capacity(self.depth as usize + 1);
        for level in 0..self.depth {
            // The node at this level covering `key`.
            let span = self.cfg.fanout.pow(u32::from(self.depth - level));
            let node = key / span.max(1);
            out.push(PageTouch {
                offset: self.level_base[level as usize] + node * u64::from(self.cfg.page_size),
                len: self.cfg.page_size,
                level,
            });
        }
        out.push(PageTouch {
            offset: self.level_base[self.depth as usize] + key * u64::from(self.cfg.record_size),
            len: self.cfg.record_size,
            level: self.depth,
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn planner(keyspace: u64) -> BtreePlanner {
        BtreePlanner::new(
            BtreeConfig {
                fanout: 16,
                ..BtreeConfig::default()
            },
            keyspace,
        )
    }

    #[test]
    fn depth_grows_logarithmically() {
        assert_eq!(planner(10).depth(), 1);
        assert_eq!(planner(16).depth(), 1);
        assert_eq!(planner(17).depth(), 2);
        assert_eq!(planner(256).depth(), 2);
        assert_eq!(planner(257).depth(), 3);
    }

    #[test]
    fn touch_sequence_is_root_to_record() {
        let p = planner(1000); // depth 3
        let t = p.touches(123);
        assert_eq!(t.len(), 4);
        for (i, touch) in t.iter().enumerate() {
            assert_eq!(touch.level as usize, i);
        }
        // Root is always the same page.
        assert_eq!(p.touches(999)[0], t[0]);
    }

    #[test]
    fn nearby_keys_share_upper_nodes_but_not_records() {
        let p = planner(1000);
        let a = p.touches(100);
        let b = p.touches(101);
        assert_eq!(a[0], b[0]);
        assert_eq!(a[1], b[1]);
        assert_ne!(a.last(), b.last());
    }

    #[test]
    fn regions_do_not_overlap() {
        let p = planner(1000);
        // A record offset never falls inside the node regions.
        let node_end = p.level_base[p.depth as usize];
        for key in (0..1000).step_by(37) {
            let t = p.touches(key);
            for touch in &t[..t.len() - 1] {
                assert!(touch.offset + u64::from(touch.len) <= node_end);
            }
            assert!(t.last().unwrap().offset >= node_end);
        }
    }

    #[test]
    fn file_size_covers_every_touch() {
        let p = planner(5000);
        let end = p.cfg.region_offset + p.file_size();
        for key in (0..5000).step_by(113) {
            for t in p.touches(key) {
                assert!(t.offset + u64::from(t.len) <= end);
            }
        }
    }

    #[test]
    #[should_panic(expected = "outside keyspace")]
    fn out_of_range_key_panics() {
        planner(10).touches(10);
    }
}
