//! The "No TT in NoSQL" survey (§2, Table 1).
//!
//! The paper analyzed six popular NoSQL systems on a 4-node setup (1
//! client, 3 replicas) under one second of severe IO contention rotating
//! across the replicas, and found: none fail over by default (timeouts are
//! tens of seconds), three of six surface *read errors* instead of failing
//! over even when the timeout is lowered to 100 ms, only two support
//! cloning, and none support hedged/tied requests.
//!
//! We encode each system's published configuration as a behaviour profile
//! and *measure* what that behaviour does under the paper's rotating
//! contention — so the table's claims are reproduced from simulation, not
//! just restated.

use mitt_device::IoClass;
use mitt_sim::Duration;
use mitt_workload::rotating_schedule;

use crate::node::NodeConfig;
use crate::sim::{
    run_experiment, ExperimentConfig, InitialReplica, NoiseKind, NoiseStream, Strategy,
};

/// A surveyed NoSQL system's tail-tolerance configuration.
#[derive(Debug, Clone)]
pub struct NosqlSystem {
    /// System name.
    pub name: &'static str,
    /// Default request timeout (the "TO Val." column).
    pub default_timeout: Duration,
    /// Whether a timeout triggers failover to another replica (the
    /// "Failover" column; three systems surface an error instead).
    pub failover_on_timeout: bool,
    /// Whether the system supports request cloning (two of six do).
    pub supports_clone: bool,
    /// Whether the system supports hedged/tied requests (none do).
    pub supports_hedged: bool,
    /// Whether the system monitors replica latency (Cassandra snitching).
    pub snitch: bool,
}

/// The six systems of Table 1 with their default timeouts and feature
/// flags as reported in §2.
pub fn surveyed_systems() -> Vec<NosqlSystem> {
    vec![
        NosqlSystem {
            name: "Cassandra",
            default_timeout: Duration::from_secs(12),
            failover_on_timeout: true,
            supports_clone: true,
            supports_hedged: false,
            snitch: true,
        },
        NosqlSystem {
            name: "Couchbase",
            default_timeout: Duration::from_secs(75),
            failover_on_timeout: false,
            supports_clone: false,
            supports_hedged: false,
            snitch: false,
        },
        NosqlSystem {
            name: "HBase",
            default_timeout: Duration::from_secs(60),
            failover_on_timeout: true,
            supports_clone: true,
            supports_hedged: false,
            snitch: false,
        },
        NosqlSystem {
            name: "MongoDB",
            default_timeout: Duration::from_secs(30),
            failover_on_timeout: false,
            supports_clone: false,
            supports_hedged: false,
            snitch: false,
        },
        NosqlSystem {
            name: "Riak",
            default_timeout: Duration::from_secs(10),
            failover_on_timeout: false,
            supports_clone: false,
            supports_hedged: false,
            snitch: false,
        },
        NosqlSystem {
            name: "Voldemort",
            default_timeout: Duration::from_secs(5),
            failover_on_timeout: true,
            supports_clone: false,
            supports_hedged: false,
            snitch: false,
        },
    ]
}

/// Measured survey row.
#[derive(Debug)]
pub struct SurveyRow {
    /// The system.
    pub system: NosqlSystem,
    /// p99 get() latency with default configuration under rotating 1 s
    /// contention.
    pub p99_default: Duration,
    /// Retries observed with the default configuration (0 = "no TT").
    pub retries_default: u64,
    /// p99 with the timeout lowered to 100 ms.
    pub p99_100ms: Duration,
    /// Read errors surfaced to users with the 100 ms timeout.
    pub errors_100ms: u64,
    /// Retries with the 100 ms timeout.
    pub retries_100ms: u64,
}

impl SurveyRow {
    /// The "Def. TT" column: tail-tolerant by default?
    pub fn default_tail_tolerant(&self) -> bool {
        // Tail-tolerant means the 1s contention does not reach the user:
        // p99 should stay well below the noise length.
        self.retries_default > 0 && self.p99_default < Duration::from_millis(100)
    }

    /// The "Failover" column under a 100 ms timeout: retried without
    /// surfacing errors?
    pub fn failover_works(&self) -> bool {
        self.errors_100ms == 0 && self.retries_100ms > 0
    }
}

fn survey_config(system: &NosqlSystem, timeout: Duration, seed: u64) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::micro(
        NodeConfig::disk_cfq(),
        Strategy::NosqlProfile {
            timeout,
            failover: system.failover_on_timeout,
        },
    );
    cfg.seed = seed;
    cfg.ops_per_client = 250;
    cfg.initial_replica = InitialReplica::Random;
    // The paper's setup: severe contention rotating across the three
    // replicas every second.
    cfg.noise = vec![NoiseStream {
        kind: NoiseKind::DiskReads {
            len: 1 << 20,
            class: IoClass::BestEffort,
            priority: 4,
        },
        schedules: rotating_schedule(3, Duration::from_secs(1), Duration::from_secs(600), 6),
    }];
    cfg
}

/// Runs the survey: every system under default and 100 ms timeouts.
pub fn run_survey(seed: u64) -> Vec<SurveyRow> {
    surveyed_systems()
        .into_iter()
        .map(|system| {
            let mut default_run =
                run_experiment(survey_config(&system, system.default_timeout, seed));
            let mut fast_run =
                run_experiment(survey_config(&system, Duration::from_millis(100), seed));
            SurveyRow {
                p99_default: default_run.get_latencies.percentile(99.0),
                retries_default: default_run.retries,
                p99_100ms: fast_run.get_latencies.percentile(99.0),
                errors_100ms: fast_run.errors,
                retries_100ms: fast_run.retries,
                system,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_systems_match_table_claims() {
        let systems = surveyed_systems();
        assert_eq!(systems.len(), 6);
        // "only two employ cloning and none of them employ hedged/tied".
        assert_eq!(systems.iter().filter(|s| s.supports_clone).count(), 2);
        assert!(systems.iter().all(|s| !s.supports_hedged));
        // "three of them do not failover on a timeout".
        assert_eq!(systems.iter().filter(|s| !s.failover_on_timeout).count(), 3);
        // "the timeout values are very coarse-grained (tens of seconds)".
        assert!(systems
            .iter()
            .all(|s| s.default_timeout >= Duration::from_secs(5)));
    }

    #[test]
    fn default_configs_are_not_tail_tolerant() {
        // One representative run (MongoDB): with a 30s timeout, the 1s
        // contention is fully absorbed by the user.
        let system = surveyed_systems().remove(3);
        assert_eq!(system.name, "MongoDB");
        let mut res = run_experiment(survey_config(&system, system.default_timeout, 3));
        assert_eq!(res.retries, 0, "30s timeout never fires on 1s bursts");
        assert!(
            res.get_latencies.percentile(99.0) > Duration::from_millis(50),
            "p99 {} should absorb the contention",
            res.get_latencies.percentile(99.0)
        );
    }

    #[test]
    fn hundred_ms_timeout_errors_without_failover() {
        let system = surveyed_systems().remove(3); // MongoDB: no failover
        let res = run_experiment(survey_config(&system, Duration::from_millis(100), 3));
        assert!(res.errors > 0, "no-failover system must surface errors");
    }

    #[test]
    fn hundred_ms_timeout_with_failover_avoids_errors() {
        let system = surveyed_systems().remove(0); // Cassandra: fails over
        let res = run_experiment(survey_config(&system, Duration::from_millis(100), 3));
        assert_eq!(res.errors, 0);
        assert!(res.retries > 0, "timeouts must fire under contention");
    }
}
