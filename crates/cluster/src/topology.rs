//! Cluster topology: node → rack → zone placement for correlated faults.
//!
//! The YCSB driver places a key's replicas on *consecutive* node ids
//! (`hash(key) % nodes`, `+1`, `+2`). For a rack-scoped fault to be
//! survivable, consecutive ids must therefore land in *different* racks —
//! so racks stripe (`rack_of(n) = n % racks`) rather than chunk. Zones
//! group racks round-robin the same way. This mirrors real placement
//! policy: replica spread across failure domains is a property of the
//! assignment function, not luck.
//!
//! The topology is pure data (no RNG, no clock); it resolves rack/zone
//! labels to member-node sets, producing the [`FaultScope::Group`] values
//! correlated fault windows carry and the [`ScopeCatalog`] the fault-plan
//! generator draws scopes from.

use mitt_faults::{FaultScope, ScopeCatalog, ScopeLabel};
use mitt_sim::Fnv1a;

/// A striped node → rack → zone map for a cluster of `nodes` machines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    nodes: u32,
    racks: u32,
    zones: u32,
}

impl Topology {
    /// A topology with `nodes` machines striped over `racks` racks, with
    /// racks striped over `zones` zones. Rack and zone counts are clamped
    /// to at least 1 and at most the layer below (more racks than nodes
    /// would leave empty racks).
    pub fn new(nodes: u32, racks: u32, zones: u32) -> Self {
        let nodes = nodes.max(1);
        let racks = racks.clamp(1, nodes);
        let zones = zones.clamp(1, racks);
        Topology {
            nodes,
            racks,
            zones,
        }
    }

    /// The conventional layout for an experiment of `nodes` machines:
    /// racks of ~4 striped across up to 2 zones.
    pub fn for_cluster(nodes: usize) -> Self {
        let nodes = nodes.max(1) as u32;
        let racks = nodes.div_ceil(4);
        let zones = racks.min(2);
        Topology::new(nodes, racks, zones)
    }

    /// Node count.
    pub fn nodes(&self) -> u32 {
        self.nodes
    }

    /// Rack count.
    pub fn racks(&self) -> u32 {
        self.racks
    }

    /// Zone count.
    pub fn zones(&self) -> u32 {
        self.zones
    }

    /// The rack holding `node` (striped, so consecutive nodes differ).
    pub fn rack_of(&self, node: u32) -> u32 {
        node % self.racks
    }

    /// The zone holding `node` (via its rack's stripe).
    pub fn zone_of(&self, node: u32) -> u32 {
        self.rack_of(node) % self.zones
    }

    /// All nodes in rack `rack`, ascending.
    pub fn rack_members(&self, rack: u32) -> Vec<u32> {
        (0..self.nodes)
            .filter(|&n| self.rack_of(n) == rack % self.racks)
            .collect()
    }

    /// All nodes in zone `zone`, ascending.
    pub fn zone_members(&self, zone: u32) -> Vec<u32> {
        (0..self.nodes)
            .filter(|&n| self.zone_of(n) == zone % self.zones)
            .collect()
    }

    /// A correlated fault scope covering one rack.
    pub fn rack_scope(&self, rack: u32) -> FaultScope {
        FaultScope::Group {
            label: ScopeLabel::Rack(rack % self.racks),
            members: self.rack_members(rack),
        }
    }

    /// A correlated fault scope covering one zone.
    pub fn zone_scope(&self, zone: u32) -> FaultScope {
        FaultScope::Group {
            label: ScopeLabel::Zone(zone % self.zones),
            members: self.zone_members(zone),
        }
    }

    /// The resolved scope catalog the fault-plan generator draws from.
    pub fn catalog(&self) -> ScopeCatalog {
        ScopeCatalog {
            nodes: self.nodes,
            racks: (0..self.racks).map(|r| self.rack_members(r)).collect(),
            zones: (0..self.zones).map(|z| self.zone_members(z)).collect(),
        }
    }

    /// Folds the layout into a digest.
    pub fn fold_digest(&self, h: &mut Fnv1a) {
        h.write_u64(u64::from(self.nodes));
        h.write_u64(u64::from(self.racks));
        h.write_u64(u64::from(self.zones));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn striping_spreads_consecutive_nodes_across_racks() {
        let t = Topology::new(12, 3, 2);
        // The YCSB replica triple (n, n+1, n+2) must span 3 distinct racks.
        for n in 0..10 {
            let rs = [t.rack_of(n), t.rack_of(n + 1), t.rack_of(n + 2)];
            assert_ne!(rs[0], rs[1]);
            assert_ne!(rs[1], rs[2]);
            assert_ne!(rs[0], rs[2]);
        }
    }

    #[test]
    fn members_partition_the_cluster() {
        let t = Topology::new(10, 3, 2);
        let mut all: Vec<u32> = (0..t.racks()).flat_map(|r| t.rack_members(r)).collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
        let mut zoned: Vec<u32> = (0..t.zones()).flat_map(|z| t.zone_members(z)).collect();
        zoned.sort_unstable();
        assert_eq!(zoned, all);
    }

    #[test]
    fn scopes_cover_exactly_their_members() {
        let t = Topology::new(8, 4, 2);
        let scope = t.rack_scope(1);
        for n in 0..8 {
            assert_eq!(scope.applies_to(n), t.rack_of(n) == 1, "node {n}");
        }
        assert!(scope.is_correlated());
        let zone = t.zone_scope(0);
        for n in 0..8 {
            assert_eq!(zone.applies_to(n), t.zone_of(n) == 0, "node {n}");
        }
    }

    #[test]
    fn catalog_matches_member_queries() {
        let t = Topology::for_cluster(20);
        let c = t.catalog();
        assert_eq!(c.nodes, 20);
        assert_eq!(c.racks.len(), t.racks() as usize);
        assert_eq!(c.zones.len(), t.zones() as usize);
        for (r, members) in c.racks.iter().enumerate() {
            assert_eq!(*members, t.rack_members(r as u32));
        }
    }

    #[test]
    fn degenerate_sizes_are_clamped() {
        let t = Topology::new(0, 0, 0);
        assert_eq!((t.nodes(), t.racks(), t.zones()), (1, 1, 1));
        assert_eq!(t.rack_members(0), vec![0]);
        let micro = Topology::for_cluster(3);
        assert_eq!(micro.racks(), 1);
    }
}
