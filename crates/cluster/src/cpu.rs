//! Per-node CPU model (request-handler threads on limited cores).
//!
//! Figure 8's surprise — hedged requests performing *worse* than Base on
//! SSD — comes from CPU contention: MongoDB runs one handler thread per
//! connection, and when hedging doubles the request intensity, 12 threads
//! contend for 8 cores while the SSD itself stays fast. We model the node's
//! CPU as `c` cores with FIFO task assignment: a task starts on the
//! earliest-free core and holds it for its service time.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use mitt_sim::{Duration, SimTime};

/// CPU parameters for a node.
#[derive(Debug, Clone)]
pub struct CpuConfig {
    /// Number of cores (hardware threads).
    pub cores: usize,
    /// CPU work to parse/route a request before its IO starts.
    pub pre_io: Duration,
    /// CPU work to serialize/send the reply after the IO completes.
    pub post_io: Duration,
}

impl CpuConfig {
    /// A 16-core disk node where CPU cost is negligible next to disk IO.
    pub fn disk_node() -> Self {
        CpuConfig {
            cores: 16,
            pre_io: Duration::from_micros(20),
            post_io: Duration::from_micros(15),
        }
    }

    /// The paper's 8-thread SSD machine, where handler CPU work is
    /// comparable to SSD latency and hedging can congest the cores.
    pub fn ssd_node() -> Self {
        CpuConfig {
            cores: 8,
            pre_io: Duration::from_micros(70),
            post_io: Duration::from_micros(60),
        }
    }
}

/// `c` cores with earliest-free assignment.
#[derive(Debug)]
pub struct CpuModel {
    cfg: CpuConfig,
    /// Min-heap of core free times.
    free_at: BinaryHeap<Reverse<SimTime>>,
    tasks: u64,
    busy_time: Duration,
}

impl CpuModel {
    /// Creates an idle CPU.
    ///
    /// # Panics
    ///
    /// Panics if the config has zero cores.
    pub fn new(cfg: CpuConfig) -> Self {
        assert!(cfg.cores > 0, "need at least one core");
        let free_at = (0..cfg.cores).map(|_| Reverse(SimTime::ZERO)).collect();
        CpuModel {
            cfg,
            free_at,
            tasks: 0,
            busy_time: Duration::ZERO,
        }
    }

    /// The CPU parameters.
    pub fn config(&self) -> &CpuConfig {
        &self.cfg
    }

    /// Runs a task of `work` on the earliest-free core; returns when it
    /// finishes (>= `now + work`; later if all cores are busy).
    pub fn run(&mut self, now: SimTime, work: Duration) -> SimTime {
        let Reverse(free) = self.free_at.pop().expect("cores never empty");
        let start = free.max(now);
        let done = start + work;
        self.free_at.push(Reverse(done));
        self.tasks += 1;
        self.busy_time += work;
        done
    }

    /// Runs the standard pre-IO handler work.
    pub fn run_pre(&mut self, now: SimTime) -> SimTime {
        let w = self.cfg.pre_io;
        self.run(now, w)
    }

    /// Runs the standard post-IO reply work.
    pub fn run_post(&mut self, now: SimTime) -> SimTime {
        let w = self.cfg.post_io;
        self.run(now, w)
    }

    /// Total tasks executed.
    pub fn tasks(&self) -> u64 {
        self.tasks
    }

    /// Total CPU time consumed.
    pub fn busy_time(&self) -> Duration {
        self.busy_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cpu(cores: usize) -> CpuModel {
        CpuModel::new(CpuConfig {
            cores,
            pre_io: Duration::from_micros(100),
            post_io: Duration::from_micros(50),
        })
    }

    #[test]
    fn idle_cores_run_immediately() {
        let mut c = cpu(2);
        let done = c.run(SimTime::ZERO, Duration::from_micros(100));
        assert_eq!(done, SimTime::ZERO + Duration::from_micros(100));
    }

    #[test]
    fn parallel_tasks_fill_cores_then_queue() {
        let mut c = cpu(2);
        let w = Duration::from_micros(100);
        let d1 = c.run(SimTime::ZERO, w);
        let d2 = c.run(SimTime::ZERO, w);
        let d3 = c.run(SimTime::ZERO, w);
        assert_eq!(d1.as_micros(), 100);
        assert_eq!(d2.as_micros(), 100);
        assert_eq!(d3.as_micros(), 200, "third task waits for a free core");
    }

    #[test]
    fn doubling_load_on_saturated_cpu_doubles_latency() {
        // The Figure 8 mechanism in miniature: 8 cores, 12 concurrent
        // tasks — the slowest tasks take ~2x the service time.
        let mut c = cpu(8);
        let w = Duration::from_micros(100);
        let dones: Vec<SimTime> = (0..12).map(|_| c.run(SimTime::ZERO, w)).collect();
        assert_eq!(dones[7].as_micros(), 100);
        assert_eq!(dones[11].as_micros(), 200);
    }

    #[test]
    fn cores_free_up_over_time() {
        let mut c = cpu(1);
        let w = Duration::from_micros(100);
        c.run(SimTime::ZERO, w);
        let later = SimTime::ZERO + Duration::from_millis(1);
        let done = c.run(later, w);
        assert_eq!(done, later + w);
    }

    #[test]
    fn counters_accumulate() {
        let mut c = cpu(4);
        c.run_pre(SimTime::ZERO);
        c.run_post(SimTime::ZERO);
        assert_eq!(c.tasks(), 2);
        assert_eq!(c.busy_time(), Duration::from_micros(150));
    }
}
