//! Property-based tests for the page cache.

#![cfg(feature = "props")]
// Gated: `proptest` is a crates.io dependency, unavailable offline.
// See the root Cargo.toml note to re-enable.

use proptest::prelude::*;

use mitt_oscache::{PageCache, PageCacheConfig, PageState};
use mitt_sim::{Duration, SimRng};

fn cache(capacity: usize) -> PageCache {
    PageCache::new(PageCacheConfig {
        page_size: 4096,
        capacity_pages: capacity,
        hit_latency: Duration::from_micros(20),
    })
}

#[derive(Debug, Clone)]
enum Op {
    Insert(u64),
    Access(u64),
    Fadvise(u64),
    Swap(u8),
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..64).prop_map(Op::Insert),
        (0u64..64).prop_map(Op::Access),
        (0u64..64).prop_map(Op::Fadvise),
        (0u8..100).prop_map(Op::Swap),
    ]
}

proptest! {
    /// The capacity bound holds under any operation sequence.
    #[test]
    fn capacity_never_exceeded(ops in prop::collection::vec(op(), 1..200), cap in 1usize..32) {
        let mut c = cache(cap);
        let mut rng = SimRng::new(1);
        for o in ops {
            match o {
                Op::Insert(p) => {
                    c.insert_range(p * 4096, 4096);
                }
                Op::Access(p) => {
                    c.access(p * 4096, 4096);
                }
                Op::Fadvise(p) => c.fadvise_dontneed(p * 4096, 4096),
                Op::Swap(pct) => {
                    c.swap_out_fraction(f64::from(pct) / 100.0, &mut rng);
                }
            }
            prop_assert!(c.resident_pages() <= cap);
        }
    }

    /// A page is SwappedOut only if it was once resident; NeverLoaded
    /// pages stay NeverLoaded until inserted.
    #[test]
    fn swap_state_requires_prior_residency(ops in prop::collection::vec(op(), 1..200)) {
        let mut c = cache(16);
        let mut rng = SimRng::new(2);
        let mut ever = std::collections::HashSet::new();
        for o in ops {
            match o {
                Op::Insert(p) => {
                    c.insert_range(p * 4096, 4096);
                    ever.insert(p);
                }
                Op::Access(p) => {
                    c.access(p * 4096, 4096);
                }
                Op::Fadvise(p) => c.fadvise_dontneed(p * 4096, 4096),
                Op::Swap(pct) => {
                    c.swap_out_fraction(f64::from(pct) / 100.0, &mut rng);
                }
            }
        }
        // Note: LRU evictions can also mark pages ever-resident; check
        // only the direction we can assert exactly.
        for p in 0u64..64 {
            if c.page_state(p) == PageState::SwappedOut {
                prop_assert!(ever.contains(&p), "page {p} swapped but never inserted");
            }
        }
    }

    /// addrcheck is read-only: calling it never changes any page state.
    #[test]
    fn addrcheck_has_no_side_effects(pages in prop::collection::vec(0u64..32, 1..50)) {
        let mut c = cache(16);
        for &p in pages.iter().take(8) {
            c.insert_range(p * 4096, 4096);
        }
        let before: Vec<PageState> = (0..32).map(|p| c.page_state(p)).collect();
        for &p in &pages {
            let _ = c.addrcheck(p * 4096, 4096);
        }
        let after: Vec<PageState> = (0..32).map(|p| c.page_state(p)).collect();
        prop_assert_eq!(before, after);
    }

    /// After inserting a range, an immediate access over it is a hit.
    #[test]
    fn insert_then_access_hits(offset in 0u64..(1 << 20), len in 1u32..65536) {
        let mut c = cache(1 << 16);
        c.insert_range(offset, len);
        let r = c.access(offset, len);
        prop_assert!(r.resident);
    }
}
