//! OS page cache model (§4.4): LRU residency, mmap address checks,
//! fadvise-driven eviction, and swap pressure.
//!
//! MittCache's job is cheap: it walks existing buffer/page tables to decide
//! whether a `read()`/`addrcheck()` can be served from memory within the
//! SLO. This crate supplies those tables. The cache distinguishes pages
//! that were *never* loaded from pages that were resident and got swapped
//! out under memory contention — the paper's caveat that EBUSY should signal
//! contention (re-evicted pages), not cold first accesses.
//!
//! The model is page-granular with exact LRU, implemented as a stamp map so
//! eviction order is deterministic.
//!
//! # Examples
//!
//! ```
//! use mitt_oscache::{PageCache, PageCacheConfig, PageState};
//!
//! let mut cache = PageCache::new(PageCacheConfig::default());
//! cache.insert_range(0, 8192);
//! assert!(cache.addrcheck(0, 8192).resident);
//! cache.fadvise_dontneed(0, 4096);
//! // A swapped-out page is contention; MittCache turns this into EBUSY.
//! assert_eq!(cache.page_state(0), PageState::SwappedOut);
//! assert!(cache.addrcheck(0, 8192).contended);
//! ```

use std::collections::{BTreeMap, HashMap, HashSet};

use mitt_sim::{Duration, SimRng};

/// Result of checking one page's residency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageState {
    /// In the page cache; a read is a memory copy.
    Resident,
    /// Never been brought in — a cold miss, not contention.
    NeverLoaded,
    /// Was resident but evicted (fadvise, LRU pressure, swap): the
    /// contention signal MittCache turns into EBUSY.
    SwappedOut,
}

/// Result of an [`PageCache::addrcheck`] over a byte range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RangeCheck {
    /// True if every page of the range is resident.
    pub resident: bool,
    /// True if at least one non-resident page was previously resident
    /// (i.e. the miss is due to memory contention).
    pub contended: bool,
    /// Pages (by page number) that must be read from storage.
    pub missing_pages: Vec<u64>,
}

/// Static parameters of the page cache.
#[derive(Debug, Clone)]
pub struct PageCacheConfig {
    /// Page size in bytes.
    pub page_size: u32,
    /// Capacity in pages.
    pub capacity_pages: usize,
    /// Latency of serving a cached read (memory copy + syscall).
    pub hit_latency: Duration,
}

impl Default for PageCacheConfig {
    /// 4 KB pages, 1M pages (4 GB), ~20 µs hit latency — matching the
    /// paper's "latencies without noise are expected to be ~0.02ms (OS
    /// cache)" for 4 KB cached reads.
    fn default() -> Self {
        PageCacheConfig {
            page_size: 4096,
            capacity_pages: 1 << 20,
            hit_latency: Duration::from_micros(20),
        }
    }
}

/// An exact-LRU page cache with swap-out tracking.
pub struct PageCache {
    cfg: PageCacheConfig,
    /// page -> LRU stamp.
    pages: HashMap<u64, u64>,
    /// LRU stamp -> page (oldest first).
    order: BTreeMap<u64, u64>,
    /// Pages that have ever been resident.
    ever_resident: HashSet<u64>,
    stamp: u64,
    hits: u64,
    misses: u64,
}

impl PageCache {
    /// Creates an empty cache.
    pub fn new(cfg: PageCacheConfig) -> Self {
        PageCache {
            cfg,
            pages: HashMap::new(),
            order: BTreeMap::new(),
            ever_resident: HashSet::new(),
            stamp: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// The cache's static parameters.
    pub fn config(&self) -> &PageCacheConfig {
        &self.cfg
    }

    /// Pages a byte range `[offset, offset+len)` spans.
    pub fn pages_of(&self, offset: u64, len: u32) -> std::ops::RangeInclusive<u64> {
        let ps = u64::from(self.cfg.page_size);
        let first = offset / ps;
        let last = (offset + u64::from(len).max(1) - 1) / ps;
        first..=last
    }

    /// Residency state of one page.
    pub fn page_state(&self, page: u64) -> PageState {
        if self.pages.contains_key(&page) {
            PageState::Resident
        } else if self.ever_resident.contains(&page) {
            PageState::SwappedOut
        } else {
            PageState::NeverLoaded
        }
    }

    fn bump(&mut self, page: u64) {
        if let Some(old) = self.pages.get(&page).copied() {
            self.order.remove(&old);
        }
        self.stamp += 1;
        self.pages.insert(page, self.stamp);
        self.order.insert(self.stamp, page);
    }

    fn evict_lru(&mut self) -> Option<u64> {
        let (&stamp, &page) = self.order.iter().next()?;
        self.order.remove(&stamp);
        self.pages.remove(&page);
        Some(page)
    }

    /// Walks the page table for a byte range without side effects other
    /// than statistics — the `addrcheck()` system call of §4.4.
    pub fn addrcheck(&self, offset: u64, len: u32) -> RangeCheck {
        let mut missing = Vec::new();
        let mut contended = false;
        for page in self.pages_of(offset, len) {
            match self.page_state(page) {
                PageState::Resident => {}
                PageState::NeverLoaded => missing.push(page),
                PageState::SwappedOut => {
                    contended = true;
                    missing.push(page);
                }
            }
        }
        RangeCheck {
            resident: missing.is_empty(),
            contended,
            missing_pages: missing,
        }
    }

    /// Performs a cached read access: bumps LRU stamps for resident pages
    /// and reports what is missing. Counts one hit if fully resident, one
    /// miss otherwise.
    pub fn access(&mut self, offset: u64, len: u32) -> RangeCheck {
        let check = self.addrcheck(offset, len);
        if check.resident {
            self.hits += 1;
            // (Named `spanned`, not `pages`: the `pages` field is a HashMap
            // and shadowing its name trips the D003 iteration lint.)
            let spanned: Vec<u64> = self.pages_of(offset, len).collect();
            for page in spanned {
                self.bump(page);
            }
        } else {
            self.misses += 1;
        }
        check
    }

    /// Inserts the pages of a byte range (after a storage read completes),
    /// evicting LRU pages as needed. Returns evicted page numbers.
    pub fn insert_range(&mut self, offset: u64, len: u32) -> Vec<u64> {
        let mut evicted = Vec::new();
        let spanned: Vec<u64> = self.pages_of(offset, len).collect();
        for page in spanned {
            self.ever_resident.insert(page);
            self.bump(page);
            while self.pages.len() > self.cfg.capacity_pages {
                if let Some(e) = self.evict_lru() {
                    evicted.push(e);
                }
            }
        }
        evicted
    }

    /// Drops the pages of a byte range (`posix_fadvise(DONTNEED)`), the
    /// mechanism the paper uses to construct the MittCache microbenchmark.
    pub fn fadvise_dontneed(&mut self, offset: u64, len: u32) {
        for page in self.pages_of(offset, len) {
            if let Some(stamp) = self.pages.remove(&page) {
                self.order.remove(&stamp);
            }
        }
    }

    /// Swaps out a uniformly random `fraction` of resident pages,
    /// emulating another tenant's memory ballooning (§6, Figure 3c).
    pub fn swap_out_fraction(&mut self, fraction: f64, rng: &mut SimRng) -> usize {
        let n = ((self.pages.len() as f64) * fraction.clamp(0.0, 1.0)) as usize;
        let mut all: Vec<u64> = self.pages.keys().copied().collect();
        all.sort_unstable(); // HashMap order is nondeterministic; fix it.
        rng.shuffle(&mut all);
        for &page in all.iter().take(n) {
            if let Some(stamp) = self.pages.remove(&page) {
                self.order.remove(&stamp);
            }
        }
        n
    }

    /// Number of resident pages.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Fraction of accesses served fully from cache.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// (hits, misses) counters.
    pub fn counters(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(capacity: usize) -> PageCache {
        PageCache::new(PageCacheConfig {
            page_size: 4096,
            capacity_pages: capacity,
            hit_latency: Duration::from_micros(20),
        })
    }

    #[test]
    fn cold_access_is_never_loaded_not_contended() {
        let mut c = cache(16);
        let r = c.access(0, 4096);
        assert!(!r.resident);
        assert!(!r.contended);
        assert_eq!(r.missing_pages, vec![0]);
        assert_eq!(c.page_state(0), PageState::NeverLoaded);
    }

    #[test]
    fn insert_makes_resident_and_hits() {
        let mut c = cache(16);
        c.insert_range(0, 8192);
        let r = c.access(0, 8192);
        assert!(r.resident);
        assert_eq!(c.page_state(1), PageState::Resident);
        assert_eq!(c.counters(), (1, 0));
    }

    #[test]
    fn fadvise_marks_swapped_out_and_contended() {
        let mut c = cache(16);
        c.insert_range(0, 4096);
        c.fadvise_dontneed(0, 4096);
        assert_eq!(c.page_state(0), PageState::SwappedOut);
        let r = c.addrcheck(0, 4096);
        assert!(!r.resident);
        assert!(r.contended, "re-evicted page must signal contention");
    }

    #[test]
    fn lru_evicts_oldest_first() {
        let mut c = cache(2);
        c.insert_range(0, 4096); // page 0
        c.insert_range(4096, 4096); // page 1
        c.access(0, 4096); // make page 0 most recent
        let evicted = c.insert_range(8192, 4096); // page 2 evicts page 1
        assert_eq!(evicted, vec![1]);
        assert_eq!(c.page_state(0), PageState::Resident);
        assert_eq!(c.page_state(1), PageState::SwappedOut);
    }

    #[test]
    fn range_spanning_pages() {
        let c = cache(16);
        let pages: Vec<u64> = c.pages_of(4000, 200).collect();
        assert_eq!(pages, vec![0, 1]); // 4000..4200 crosses the 4096 line
        let one: Vec<u64> = c.pages_of(0, 1).collect();
        assert_eq!(one, vec![0]);
    }

    #[test]
    fn swap_out_fraction_is_proportional_and_deterministic() {
        let mut c = cache(1000);
        for i in 0..100u64 {
            c.insert_range(i * 4096, 4096);
        }
        let mut rng = SimRng::new(7);
        let n = c.swap_out_fraction(0.2, &mut rng);
        assert_eq!(n, 20);
        assert_eq!(c.resident_pages(), 80);
        // Deterministic under a fixed seed.
        let mut c2 = cache(1000);
        for i in 0..100u64 {
            c2.insert_range(i * 4096, 4096);
        }
        let mut rng2 = SimRng::new(7);
        c2.swap_out_fraction(0.2, &mut rng2);
        let s1: Vec<PageState> = (0..100).map(|p| c.page_state(p)).collect();
        let s2: Vec<PageState> = (0..100).map(|p| c2.page_state(p)).collect();
        assert_eq!(s1, s2);
    }

    #[test]
    fn hit_ratio_tracks_accesses() {
        let mut c = cache(16);
        c.insert_range(0, 4096);
        c.access(0, 4096);
        c.access(4096, 4096);
        assert!((c.hit_ratio() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn partial_residency_is_a_miss() {
        let mut c = cache(16);
        c.insert_range(0, 4096);
        let r = c.access(0, 8192); // page 0 resident, page 1 not
        assert!(!r.resident);
        assert_eq!(r.missing_pages, vec![1]);
    }
}
