//! The counting global allocator: per-phase allocation telemetry.
//!
//! [`CountingAlloc`] wraps the system allocator and attributes every
//! allocation and deallocation to the profiling [`Phase`](crate::Phase)
//! active on the allocating thread. The counters are process-global
//! atomics (an allocator cannot reach into an `Rc<RefCell<..>>` sink), so
//! they are *monotonic across the process lifetime*; a report snapshots
//! them and the reader diffs snapshots if per-run numbers are wanted.
//!
//! Installation is opt-in via the `prof` cargo feature, which places a
//! `#[global_allocator]` instance in this crate (see `lib.rs`). Without
//! the feature the counting logic is still compiled — the unit tests and
//! the guard machinery exercise it by calling the `GlobalAlloc` methods
//! directly — but no real allocation flows through it and the report
//! marks the alloc table as not tracking.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::{Phase, N_PHASES};

/// One relaxed counter per phase; allocation paths must stay cheap.
macro_rules! per_phase {
    () => {
        [
            AtomicU64::new(0),
            AtomicU64::new(0),
            AtomicU64::new(0),
            AtomicU64::new(0),
            AtomicU64::new(0),
            AtomicU64::new(0),
            AtomicU64::new(0),
        ]
    };
}

static ALLOCS: [AtomicU64; N_PHASES] = per_phase!();
static ALLOC_BYTES: [AtomicU64; N_PHASES] = per_phase!();
static FREES: [AtomicU64; N_PHASES] = per_phase!();
static FREE_BYTES: [AtomicU64; N_PHASES] = per_phase!();

thread_local! {
    /// The phase allocations on this thread are attributed to. Phase
    /// guards push/pop it; everything outside a guard lands in
    /// [`Phase::Other`].
    static CURRENT_PHASE: Cell<usize> = const { Cell::new(Phase::Other as usize) };
}

/// Sets the calling thread's allocation-attribution phase, returning the
/// previous one (so guards can restore it on drop).
pub(crate) fn set_thread_phase(phase: Phase) -> usize {
    CURRENT_PHASE.with(|c| c.replace(phase as usize))
}

/// Restores a phase index previously returned by [`set_thread_phase`].
pub(crate) fn restore_thread_phase(prev: usize) {
    CURRENT_PHASE.with(|c| c.set(prev.min(N_PHASES - 1)));
}

/// The phase index allocations on this thread currently charge to.
pub fn thread_phase() -> usize {
    CURRENT_PHASE.with(Cell::get)
}

/// A snapshot of one phase's allocation counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AllocCounters {
    /// Allocations attributed to the phase.
    pub allocs: u64,
    /// Bytes allocated.
    pub bytes: u64,
    /// Deallocations attributed to the phase.
    pub frees: u64,
    /// Bytes deallocated.
    pub freed_bytes: u64,
}

/// Snapshots every phase's counters, indexed by `Phase as usize`.
pub fn snapshot() -> [AllocCounters; N_PHASES] {
    let mut out = [AllocCounters::default(); N_PHASES];
    for (i, slot) in out.iter_mut().enumerate() {
        *slot = AllocCounters {
            allocs: ALLOCS[i].load(Ordering::Relaxed),
            bytes: ALLOC_BYTES[i].load(Ordering::Relaxed),
            frees: FREES[i].load(Ordering::Relaxed),
            freed_bytes: FREE_BYTES[i].load(Ordering::Relaxed),
        };
    }
    out
}

/// True when the counting allocator is installed as the global allocator
/// (the `prof` cargo feature), i.e. the alloc table reflects real traffic.
pub const fn tracking_installed() -> bool {
    cfg!(feature = "prof")
}

/// A `GlobalAlloc` wrapper over [`System`] that counts allocations and
/// bytes per profiling phase.
#[derive(Debug, Default, Clone, Copy)]
pub struct CountingAlloc;

impl CountingAlloc {
    /// A new counting allocator (stateless; all state is in statics).
    pub const fn new() -> Self {
        CountingAlloc
    }

    #[inline]
    fn charge_alloc(size: usize) {
        let p = thread_phase().min(N_PHASES - 1);
        ALLOCS[p].fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES[p].fetch_add(size as u64, Ordering::Relaxed);
    }

    #[inline]
    fn charge_free(size: usize) {
        let p = thread_phase().min(N_PHASES - 1);
        FREES[p].fetch_add(1, Ordering::Relaxed);
        FREE_BYTES[p].fetch_add(size as u64, Ordering::Relaxed);
    }
}

// SAFETY: delegates every allocation verbatim to `System`; the counter
// updates are relaxed atomics with no allocation of their own, so the
// `GlobalAlloc` contract is inherited unchanged.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        Self::charge_alloc(layout.size());
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        Self::charge_free(layout.size());
        System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        Self::charge_alloc(layout.size());
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A grow (or shrink) counts as one free of the old block plus one
        // allocation of the new size, keeping byte totals balanced.
        Self::charge_free(layout.size());
        Self::charge_alloc(new_size);
        System.realloc(ptr, layout, new_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives the allocator through its `GlobalAlloc` entry points without
    /// installing it globally, so the test is deterministic regardless of
    /// the `prof` feature.
    fn alloc_free_cycle(a: &CountingAlloc, size: usize) {
        let layout = Layout::from_size_align(size, 8).expect("valid layout");
        // SAFETY: layout is non-zero-sized and the pointer is freed with
        // the same layout immediately.
        unsafe {
            let p = a.alloc(layout);
            assert!(!p.is_null());
            a.dealloc(p, layout);
        }
    }

    #[test]
    fn counters_are_monotonic() {
        let a = CountingAlloc::new();
        let before = snapshot();
        alloc_free_cycle(&a, 64);
        let mid = snapshot();
        alloc_free_cycle(&a, 128);
        let after = snapshot();
        for i in 0..N_PHASES {
            assert!(mid[i].allocs >= before[i].allocs);
            assert!(after[i].allocs >= mid[i].allocs);
            assert!(after[i].bytes >= mid[i].bytes);
            assert!(after[i].frees >= mid[i].frees);
        }
    }

    #[test]
    fn allocations_are_phase_scoped() {
        let a = CountingAlloc::new();
        // Attribute to a distinctive phase; concurrent test threads only
        // ever add to counters, so >= deltas are race-free assertions.
        let prev = set_thread_phase(Phase::StatsFold);
        let before = snapshot()[Phase::StatsFold as usize];
        alloc_free_cycle(&a, 256);
        alloc_free_cycle(&a, 512);
        let after = snapshot()[Phase::StatsFold as usize];
        restore_thread_phase(prev);
        assert!(after.allocs >= before.allocs + 2);
        assert!(after.bytes >= before.bytes + 768);
        assert!(after.frees >= before.frees + 2);
        assert!(after.freed_bytes >= before.freed_bytes + 768);
        // Once restored, further traffic does not charge StatsFold.
        let frozen = snapshot()[Phase::StatsFold as usize];
        alloc_free_cycle(&a, 1024);
        let still = snapshot()[Phase::StatsFold as usize];
        // Another thread could be in StatsFold only if a test put it
        // there; within this crate no other test uses StatsFold.
        assert_eq!(frozen, still);
    }

    #[test]
    fn realloc_counts_both_sides() {
        let a = CountingAlloc::new();
        let prev = set_thread_phase(Phase::TraceEmit);
        let before = snapshot()[Phase::TraceEmit as usize];
        let layout = Layout::from_size_align(64, 8).expect("valid layout");
        // SAFETY: grown pointer is freed with the grown layout.
        unsafe {
            let p = a.alloc(layout);
            let q = a.realloc(p, layout, 256);
            assert!(!q.is_null());
            a.dealloc(q, Layout::from_size_align(256, 8).expect("valid layout"));
        }
        let after = snapshot()[Phase::TraceEmit as usize];
        restore_thread_phase(prev);
        assert!(after.allocs >= before.allocs + 2, "alloc + realloc-grow");
        assert!(after.frees >= before.frees + 2, "realloc-shrink + dealloc");
    }
}
