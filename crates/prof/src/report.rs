//! The `mitt-prof/v1` report: JSON and folded-stack exports.
//!
//! The JSON artifact is hand-formatted with a fixed field order and
//! fixed-point floats (the same discipline as `mitt-obs`' bench reports),
//! so diffs are meaningful. The folded-stack export is one
//! `frame;frame;frame <value>` line per phase, the lingua franca of
//! flamegraph tooling (`flamegraph.pl`, inferno, speedscope); values are
//! wall nanoseconds, and child phases are subtracted from their enclosing
//! guard so the flame's self-times add up instead of double counting.

use crate::alloc::{tracking_installed, AllocCounters};
use crate::{GaugeSample, Phase, PhaseStats, ProfCore, N_PHASES};

/// Schema identifier embedded in every JSON report.
pub const PROF_SCHEMA: &str = "mitt-prof/v1";

/// A point-in-time snapshot of everything a [`ProfSink`](crate::ProfSink)
/// collected.
#[derive(Debug, Clone)]
pub struct ProfReport {
    /// Whether the counting allocator is actually installed (the `prof`
    /// cargo feature); without it the alloc table is all zeros.
    pub alloc_tracking: bool,
    /// Wall nanoseconds between sink creation and `finish()` (0 if the
    /// run was never finished).
    pub wall_elapsed_ns: u64,
    /// Virtual nanoseconds the run covered.
    pub sim_elapsed_ns: u64,
    /// Simulation events dispatched.
    pub events_dispatched: u64,
    /// Simulated IOs submitted into storage stacks.
    pub ios_submitted: u64,
    /// Per-phase wall-clock timings, indexed by `Phase as usize`.
    pub phases: Vec<PhaseStats>,
    /// Per-phase allocation counters for the run (not process-lifetime).
    pub alloc: [AllocCounters; N_PHASES],
    /// Gauge samples, oldest first (resolution-halved if the ring filled).
    pub gauges: Vec<GaugeSample>,
    /// Gauge samples compacted away by the bounded ring.
    pub gauges_dropped: u64,
}

impl ProfReport {
    /// The all-zero report a disabled sink produces.
    pub(crate) fn empty() -> Self {
        ProfReport {
            alloc_tracking: tracking_installed(),
            wall_elapsed_ns: 0,
            sim_elapsed_ns: 0,
            events_dispatched: 0,
            ios_submitted: 0,
            phases: vec![PhaseStats::default(); N_PHASES],
            alloc: [AllocCounters::default(); N_PHASES],
            gauges: Vec::new(),
            gauges_dropped: 0,
        }
    }

    pub(crate) fn from_core(core: &ProfCore) -> Self {
        ProfReport {
            alloc_tracking: tracking_installed(),
            wall_elapsed_ns: core.wall_elapsed_ns,
            sim_elapsed_ns: core.sim_elapsed.as_nanos(),
            events_dispatched: core.events_dispatched,
            ios_submitted: core.ios_submitted,
            phases: core.phases.to_vec(),
            alloc: core.alloc_delta(),
            gauges: core.gauges.clone(),
            gauges_dropped: core.gauges_dropped,
        }
    }

    /// The headline throughput number: simulated IOs per wall second.
    pub fn sim_ios_per_wall_sec(&self) -> f64 {
        if self.wall_elapsed_ns == 0 {
            0.0
        } else {
            self.ios_submitted as f64 / (self.wall_elapsed_ns as f64 / 1e9)
        }
    }

    /// Simulated milliseconds per wall millisecond (the "cluster-seconds
    /// per wall-second" speed ratio of ROADMAP item 1).
    pub fn sim_ms_per_wall_ms(&self) -> f64 {
        if self.wall_elapsed_ns == 0 {
            0.0
        } else {
            self.sim_elapsed_ns as f64 / self.wall_elapsed_ns as f64
        }
    }

    /// Events dispatched per wall second.
    pub fn events_per_wall_sec(&self) -> f64 {
        if self.wall_elapsed_ns == 0 {
            0.0
        } else {
            self.events_dispatched as f64 / (self.wall_elapsed_ns as f64 / 1e9)
        }
    }

    /// Serialises as `mitt-prof/v1` JSON with fixed field order.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(2048);
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": \"{PROF_SCHEMA}\",\n"));
        out.push_str(&format!("  \"alloc_tracking\": {},\n", self.alloc_tracking));
        out.push_str(&format!(
            "  \"wall_elapsed_ms\": {},\n",
            fmt3(self.wall_elapsed_ns as f64 / 1e6)
        ));
        out.push_str(&format!(
            "  \"sim_elapsed_ms\": {},\n",
            fmt3(self.sim_elapsed_ns as f64 / 1e6)
        ));
        out.push_str(&format!(
            "  \"events_dispatched\": {},\n",
            self.events_dispatched
        ));
        out.push_str(&format!("  \"ios_submitted\": {},\n", self.ios_submitted));
        out.push_str(&format!(
            "  \"sim_ios_per_wall_sec\": {},\n",
            fmt3(self.sim_ios_per_wall_sec())
        ));
        out.push_str(&format!(
            "  \"sim_ms_per_wall_ms\": {},\n",
            fmt3(self.sim_ms_per_wall_ms())
        ));
        out.push_str(&format!(
            "  \"events_per_wall_sec\": {},\n",
            fmt3(self.events_per_wall_sec())
        ));
        out.push_str("  \"phases\": [\n");
        for (i, phase) in Phase::ALL.iter().enumerate() {
            let s = &self.phases[*phase as usize];
            out.push_str(&format!(
                "    {{\"phase\": \"{}\", \"count\": {}, \"total_us\": {}, \
                 \"mean_ns\": {}, \"p50_ns\": {}, \"p99_ns\": {}, \"max_ns\": {}}}{}\n",
                phase.label(),
                s.count,
                fmt3(s.total_ns as f64 / 1e3),
                fmt3(s.hist.mean_ns()),
                s.hist.quantile_ns(0.5),
                s.hist.quantile_ns(0.99),
                s.hist.max_ns(),
                if i + 1 < N_PHASES { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"alloc\": [\n");
        for (i, phase) in Phase::ALL.iter().enumerate() {
            let a = &self.alloc[*phase as usize];
            out.push_str(&format!(
                "    {{\"phase\": \"{}\", \"allocs\": {}, \"bytes\": {}, \
                 \"frees\": {}, \"freed_bytes\": {}}}{}\n",
                phase.label(),
                a.allocs,
                a.bytes,
                a.frees,
                a.freed_bytes,
                if i + 1 < N_PHASES { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        let max_ring = self.gauges.iter().map(|g| g.event_ring).max().unwrap_or(0);
        let max_inflight = self
            .gauges
            .iter()
            .map(|g| g.inflight_ios)
            .max()
            .unwrap_or(0);
        let max_depth = self.gauges.iter().map(|g| g.queue_depth).max().unwrap_or(0);
        out.push_str(&format!(
            "  \"gauges\": {{\"samples\": {}, \"dropped\": {}, \"max_event_ring\": {}, \
             \"max_inflight_ios\": {}, \"max_queue_depth\": {}}}\n",
            self.gauges.len(),
            self.gauges_dropped,
            max_ring,
            max_inflight,
            max_depth
        ));
        out.push_str("}\n");
        out
    }

    /// Folded-stack export: `engine;dispatch;predict 12345` lines (values
    /// in wall nanoseconds of *self* time). Feed to `flamegraph.pl` or
    /// paste into <https://www.speedscope.app>.
    pub fn folded_stacks(&self) -> String {
        let total = |p: Phase| self.phases[p as usize].total_ns;
        // Children run inside their parent's guard, so subtract them for
        // honest self-times (saturating: clock jitter can skew a little).
        let dispatch_self = total(Phase::Dispatch)
            .saturating_sub(total(Phase::Predict))
            .saturating_sub(total(Phase::Sched))
            .saturating_sub(total(Phase::TraceEmit));
        let sched_self = total(Phase::Sched).saturating_sub(total(Phase::Device));
        let rows = [
            (Phase::Dispatch.stack(), dispatch_self),
            (Phase::Predict.stack(), total(Phase::Predict)),
            (Phase::Sched.stack(), sched_self),
            (Phase::Device.stack(), total(Phase::Device)),
            (Phase::TraceEmit.stack(), total(Phase::TraceEmit)),
            (Phase::StatsFold.stack(), total(Phase::StatsFold)),
            (Phase::Other.stack(), total(Phase::Other)),
        ];
        let mut out = String::new();
        for (stack, ns) in rows {
            if ns > 0 {
                out.push_str(&format!("{stack} {ns}\n"));
            }
        }
        out
    }
}

/// Fixed-point formatting with three decimals (the `mitt-obs` `num3`
/// discipline: deterministic, diff-friendly, locale-free).
fn fmt3(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "0.000".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProfSink;
    use mitt_sim::SimTime;

    fn sample_sink() -> ProfSink {
        let sink = ProfSink::enabled();
        {
            let _d = sink.phase(Phase::Dispatch);
            let _p = sink.phase(Phase::Predict);
        }
        {
            let _d = sink.phase(Phase::Dispatch);
            let _s = sink.phase(Phase::Sched);
            let _v = sink.phase(Phase::Device);
        }
        sink.io_submitted();
        sink.sample_gauges(GaugeSample {
            at: SimTime::from_nanos(10),
            event_ring: 7,
            inflight_ios: 3,
            queue_depth: 2,
        });
        sink.finish(SimTime::from_nanos(2_000_000));
        sink
    }

    #[test]
    fn json_has_schema_and_all_phase_rows() {
        let json = sample_sink().report_json();
        assert!(json.contains("\"schema\": \"mitt-prof/v1\""));
        for phase in Phase::ALL {
            assert!(json.contains(&format!("\"phase\": \"{}\"", phase.label())));
        }
        assert!(json.contains("\"ios_submitted\": 1"));
        assert!(json.contains("\"max_event_ring\": 7"));
        // Two top-level tables plus the gauge summary.
        assert!(json.contains("\"alloc\": ["));
        assert!(json.contains("\"gauges\": {"));
    }

    #[test]
    fn folded_stacks_nest_and_are_non_empty() {
        let folded = sample_sink().report().folded_stacks();
        assert!(!folded.is_empty());
        assert!(folded.contains("engine;dispatch;predict "));
        assert!(folded.contains("engine;dispatch;sched;device "));
        for line in folded.lines() {
            let (stack, value) = line.rsplit_once(' ').expect("stack value");
            assert!(stack.starts_with("engine"));
            assert!(value.parse::<u64>().expect("integer ns") > 0);
        }
    }

    #[test]
    fn wall_clock_values_never_reach_a_digest_surface() {
        // The report type deliberately has no fold_digest: this test is a
        // compile-time tripwire — if someone adds one, they must come
        // here and justify how wall-clock data stays out of run digests.
        let r = sample_sink().report();
        let json = r.to_json();
        assert!(json.contains("wall_elapsed_ms"));
    }

    #[test]
    fn disabled_report_is_all_zero_but_schema_valid() {
        let r = ProfSink::disabled().report();
        let json = r.to_json();
        assert!(json.contains("\"schema\": \"mitt-prof/v1\""));
        assert!(json.contains("\"ios_submitted\": 0"));
        assert_eq!(r.folded_stacks(), "");
    }
}
