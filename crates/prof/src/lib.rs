//! Engine-side self-profiling for the MittOS simulator (`mitt-prof`).
//!
//! `mitt-trace` and `mitt-obs` observe the *simulated* world; this crate
//! observes the *engine itself* — where wall-clock time and allocation
//! churn go while the simulator runs. It exists so the ROADMAP's "10×
//! engine speed" work has numbers to ratchet. Four instruments:
//!
//! - **Phase timers** ([`ProfSink::phase`]): scoped wall-clock guards
//!   around the engine's hot regions (event dispatch, predictor calls,
//!   scheduler work, device service, stats folding, trace emission), each
//!   feeding a pow2-bucket latency histogram in the style of
//!   `simcore::stats`.
//! - **Allocation telemetry** ([`alloc::CountingAlloc`]): a counting
//!   global allocator (opt-in via the `prof` cargo feature) attributing
//!   allocations/bytes to the phase active on the allocating thread.
//! - **Live gauges** ([`ProfSink::sample_gauges`]): event-ring occupancy,
//!   in-flight IO count, and device queue depth, sampled on a virtual-
//!   clock cadence by the cluster driver.
//! - **A throughput meter**: simulated IOs (and simulated milliseconds)
//!   per wall-clock second, the headline number for engine-speed claims.
//!
//! Two exports: a `mitt-prof/v1` JSON report ([`ProfSink::report_json`])
//! and a folded-stack text file ([`ProfSink::folded_stacks`]) consumable
//! by standard flamegraph tooling (`flamegraph.pl`, speedscope, inferno).
//!
//! **Digest-neutrality invariant.** This is the one crate in the
//! workspace that is *allowed* to read the wall clock (under reasoned
//! `mitt-lint` D001 waivers) — and in exchange, nothing it records may
//! ever flow into a run digest or back into simulation behaviour. A
//! `ProfSink` has no `fold_digest`; the cluster driver consumes no value
//! from it mid-run; enabling or disabling profiling must leave same-seed
//! digests byte-identical (tests/determinism.rs enforces this).
//!
//! Like [`TraceSink`](../mitt_trace), a sink handle is an
//! `Option<Rc<RefCell<..>>>`: a disabled sink costs one branch per call
//! and never allocates.

use std::cell::RefCell;
use std::rc::Rc;

// mitt-lint: allow(D001, "mitt-prof is the engine profiler: wall-clock phase timers are its whole purpose, and its data never reaches a digest")
use std::time::Instant;

use mitt_sim::SimTime;

pub mod alloc;
pub mod report;

pub use alloc::{snapshot as alloc_snapshot, AllocCounters, CountingAlloc};
pub use report::ProfReport;

/// The counting allocator, installed process-wide when the `prof` cargo
/// feature is enabled. Everything the process allocates is then charged
/// to the phase active on the allocating thread.
#[cfg(feature = "prof")]
#[global_allocator]
static PROF_GLOBAL_ALLOC: CountingAlloc = CountingAlloc::new();

/// Number of labelled phases (including the catch-all [`Phase::Other`]).
pub const N_PHASES: usize = 7;

/// Labelled engine phases the timers and the allocator attribute to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Phase {
    /// The cluster driver's event-dispatch loop (one guard per event).
    Dispatch = 0,
    /// Predictor admission checks (MittNoop/MittCFQ/MittSSD/MittCache).
    Predict = 1,
    /// Block-layer scheduler work (CFQ/noop enqueue, dispatch, complete).
    Sched = 2,
    /// Device model service (disk seek/transfer, SSD chip scheduling).
    Device = 3,
    /// End-of-run stats folding (latency recorders, result finalize).
    StatsFold = 4,
    /// Structured trace emission (event ring pushes, metric updates).
    TraceEmit = 5,
    /// Everything outside an explicit guard.
    Other = 6,
}

impl Phase {
    /// All phases, in report order.
    pub const ALL: [Phase; N_PHASES] = [
        Phase::Dispatch,
        Phase::Predict,
        Phase::Sched,
        Phase::Device,
        Phase::StatsFold,
        Phase::TraceEmit,
        Phase::Other,
    ];

    /// The stable snake_case label used in reports and folded stacks.
    pub const fn label(self) -> &'static str {
        match self {
            Phase::Dispatch => "dispatch",
            Phase::Predict => "predict",
            Phase::Sched => "sched",
            Phase::Device => "device",
            Phase::StatsFold => "stats_fold",
            Phase::TraceEmit => "trace_emit",
            Phase::Other => "other",
        }
    }

    /// The folded-stack frame path for flamegraph tooling. Child phases
    /// nest under the guard that encloses them at runtime: predictors,
    /// schedulers, and trace emission run inside event dispatch, and the
    /// device models run inside the scheduler.
    pub const fn stack(self) -> &'static str {
        match self {
            Phase::Dispatch => "engine;dispatch",
            Phase::Predict => "engine;dispatch;predict",
            Phase::Sched => "engine;dispatch;sched",
            Phase::Device => "engine;dispatch;sched;device",
            Phase::StatsFold => "engine;stats_fold",
            Phase::TraceEmit => "engine;dispatch;trace_emit",
            Phase::Other => "engine;other",
        }
    }
}

/// Power-of-two-bucket latency histogram: bucket `i` holds samples whose
/// nanosecond value has its highest set bit at position `i` (i.e. values
/// in `[2^i, 2^(i+1))`), so the whole nanosecond-to-seconds range fits in
/// 64 fixed buckets with zero allocation per sample. Same observe/total/
/// mean surface as `simcore::stats`' recorders.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pow2Hist {
    counts: [u64; 64],
    total: u64,
    sum: u64,
    max: u64,
}

impl Default for Pow2Hist {
    fn default() -> Self {
        Self::new()
    }
}

impl Pow2Hist {
    /// An empty histogram.
    pub const fn new() -> Self {
        Pow2Hist {
            counts: [0; 64],
            total: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one nanosecond sample.
    pub fn observe(&mut self, ns: u64) {
        let idx = 63 - ns.max(1).leading_zeros() as usize;
        self.counts[idx] += 1;
        self.total += 1;
        self.sum = self.sum.saturating_add(ns);
        self.max = self.max.max(ns);
    }

    /// Number of samples.
    pub const fn total(&self) -> u64 {
        self.total
    }

    /// Sum of all samples in nanoseconds (saturating).
    pub const fn sum_ns(&self) -> u64 {
        self.sum
    }

    /// Largest sample in nanoseconds.
    pub const fn max_ns(&self) -> u64 {
        self.max
    }

    /// Mean sample in nanoseconds, or 0.0 when empty.
    pub fn mean_ns(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Upper bound (`2^(i+1)`) of the bucket containing the q-quantile
    /// sample (0.0..=1.0), or 0 when empty. Bucketed, so an estimate —
    /// within 2× of the true value by construction.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return 1u64 << (i + 1).min(63);
            }
        }
        self.max
    }

    /// Non-empty buckets as `(lower_bound_ns, count)` pairs.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (1u64 << i, c))
    }
}

/// One phase's accumulated wall-clock timings.
#[derive(Debug, Clone, Default)]
pub struct PhaseStats {
    /// Guard activations.
    pub count: u64,
    /// Total wall nanoseconds inside the guard (children included).
    pub total_ns: u64,
    /// Per-activation latency histogram.
    pub hist: Pow2Hist,
}

/// One virtual-clock-cadence gauge sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeSample {
    /// Virtual time of the sample.
    pub at: SimTime,
    /// Entries in the event calendar (including lazily cancelled ones).
    pub event_ring: usize,
    /// Client IOs in flight across the cluster.
    pub inflight_ios: usize,
    /// IOs inside the device stacks (scheduler queues + device queues).
    pub queue_depth: usize,
}

/// Bounded gauge ring: newest samples win, eviction is counted.
const GAUGE_CAPACITY: usize = 4096;

/// Shared recording state behind every enabled sink handle.
#[derive(Debug)]
struct ProfCore {
    phases: [PhaseStats; N_PHASES],
    gauges: Vec<GaugeSample>,
    gauges_dropped: u64,
    /// Simulated IOs submitted into any node's storage stack.
    ios_submitted: u64,
    /// Events the cluster driver dispatched.
    events_dispatched: u64,
    /// Allocation counters at sink creation, subtracted from the
    /// process-global monotonic counters to give per-run numbers.
    alloc_at_start: [AllocCounters; N_PHASES],
    // mitt-lint: allow(D001, "wall-clock anchor of the throughput meter; never digested")
    started: Instant,
    /// Wall nanoseconds from `started` to `finish()`; 0 until finished.
    wall_elapsed_ns: u64,
    /// Virtual time at `finish()`.
    sim_elapsed: SimTime,
}

/// A cheap, cloneable handle to the profiling state — or a disabled no-op.
///
/// Mirrors `TraceSink`: the simulator is single-threaded, so the shared
/// state is an `Rc<RefCell<..>>`; cloning shares the same collector, and
/// a disabled sink makes every call a single branch.
#[derive(Debug, Clone, Default)]
pub struct ProfSink {
    core: Option<Rc<RefCell<ProfCore>>>,
}

impl ProfSink {
    /// A disabled sink: every call is a no-op costing one branch.
    pub fn disabled() -> Self {
        ProfSink::default()
    }

    /// An enabled sink; the throughput meter's wall clock starts now.
    pub fn enabled() -> Self {
        ProfSink {
            core: Some(Rc::new(RefCell::new(ProfCore {
                phases: Default::default(),
                gauges: Vec::new(),
                gauges_dropped: 0,
                ios_submitted: 0,
                events_dispatched: 0,
                alloc_at_start: alloc::snapshot(),
                // mitt-lint: allow(D001, "throughput meter start anchor; never digested")
                started: Instant::now(),
                wall_elapsed_ns: 0,
                sim_elapsed: SimTime::ZERO,
            }))),
        }
    }

    /// True if profiling data is being recorded.
    pub fn is_enabled(&self) -> bool {
        self.core.is_some()
    }

    /// Opens a scoped wall-clock timer for `phase`; the elapsed time is
    /// recorded when the guard drops. While the guard lives, allocations
    /// on this thread are attributed to `phase`. Guards nest: the inner
    /// guard's phase wins until it drops. Re-entering the phase already
    /// active on this thread returns an inert guard, so a public entry
    /// point calling another guarded entry point of the same phase never
    /// double-counts the interval.
    #[must_use = "the guard records on drop; binding it to _ discards the measurement"]
    pub fn phase(&self, phase: Phase) -> PhaseGuard {
        let Some(core) = &self.core else {
            return PhaseGuard { active: None };
        };
        if alloc::thread_phase() == phase as usize {
            return PhaseGuard { active: None };
        }
        let prev_alloc_phase = alloc::set_thread_phase(phase);
        PhaseGuard {
            active: Some(ActiveGuard {
                core: Rc::clone(core),
                phase,
                prev_alloc_phase,
                // mitt-lint: allow(D001, "phase timer start; never digested")
                start: Instant::now(),
            }),
        }
    }

    /// Counts one simulated IO submitted into a storage stack (the
    /// numerator of the throughput meter).
    pub fn io_submitted(&self) {
        if let Some(core) = &self.core {
            core.borrow_mut().ios_submitted += 1;
        }
    }

    /// Counts one dispatched simulation event.
    pub fn event_dispatched(&self) {
        if let Some(core) = &self.core {
            core.borrow_mut().events_dispatched += 1;
        }
    }

    /// Records a gauge sample (called by the driver on its virtual-clock
    /// cadence). The ring is bounded: past [`GAUGE_CAPACITY`], the oldest
    /// half is compacted away and the eviction is counted, never silent.
    pub fn sample_gauges(&self, sample: GaugeSample) {
        let Some(core) = &self.core else { return };
        let mut core = core.borrow_mut();
        if core.gauges.len() >= GAUGE_CAPACITY {
            // Keep every second sample: halves the resolution, keeps the
            // full time span (better for gauges than drop-oldest).
            let kept: Vec<GaugeSample> = core.gauges.iter().copied().step_by(2).collect();
            core.gauges_dropped += (core.gauges.len() - kept.len()) as u64;
            core.gauges = kept;
        }
        core.gauges.push(sample);
    }

    /// Stops the throughput meter: records the wall-clock span since
    /// [`ProfSink::enabled`] and the final virtual time.
    pub fn finish(&self, sim_elapsed: SimTime) {
        let Some(core) = &self.core else { return };
        let mut core = core.borrow_mut();
        let elapsed = core.started.elapsed();
        core.wall_elapsed_ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        core.sim_elapsed = sim_elapsed;
    }

    /// Snapshots everything into a [`ProfReport`] (alloc counters are
    /// diffed against the sink-creation snapshot, so they are per-run).
    pub fn report(&self) -> ProfReport {
        match &self.core {
            Some(core) => ProfReport::from_core(&core.borrow()),
            None => ProfReport::empty(),
        }
    }

    /// The `mitt-prof/v1` JSON report.
    pub fn report_json(&self) -> String {
        self.report().to_json()
    }

    /// The folded-stack export (`frame;frame;frame <microseconds>` lines)
    /// for flamegraph tooling.
    pub fn folded_stacks(&self) -> String {
        self.report().folded_stacks()
    }
}

/// Everything a guard needs to record its measurement on drop.
#[derive(Debug)]
struct ActiveGuard {
    core: Rc<RefCell<ProfCore>>,
    phase: Phase,
    prev_alloc_phase: usize,
    // mitt-lint: allow(D001, "guard start timestamp; never digested")
    start: Instant,
}

/// Scoped phase timer returned by [`ProfSink::phase`]. Records elapsed
/// wall time into the phase's histogram and restores the previous
/// allocation-attribution phase when dropped.
#[derive(Debug)]
pub struct PhaseGuard {
    active: Option<ActiveGuard>,
}

impl Drop for PhaseGuard {
    fn drop(&mut self) {
        let Some(g) = self.active.take() else { return };
        let elapsed = g.start.elapsed();
        let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        alloc::restore_thread_phase(g.prev_alloc_phase);
        // Guards never outlive the single-threaded driver's call frame,
        // so this borrow cannot collide with an outer borrow.
        let mut core = g.core.borrow_mut();
        let stats = &mut core.phases[g.phase as usize];
        stats.count += 1;
        stats.total_ns = stats.total_ns.saturating_add(ns);
        stats.hist.observe(ns);
    }
}

impl ProfCore {
    /// Per-run allocation counters: global monotonic minus at-start.
    fn alloc_delta(&self) -> [AllocCounters; N_PHASES] {
        let now = alloc::snapshot();
        let mut out = [AllocCounters::default(); N_PHASES];
        for i in 0..N_PHASES {
            out[i] = AllocCounters {
                allocs: now[i].allocs.saturating_sub(self.alloc_at_start[i].allocs),
                bytes: now[i].bytes.saturating_sub(self.alloc_at_start[i].bytes),
                frees: now[i].frees.saturating_sub(self.alloc_at_start[i].frees),
                freed_bytes: now[i]
                    .freed_bytes
                    .saturating_sub(self.alloc_at_start[i].freed_bytes),
            };
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_is_a_no_op() {
        let sink = ProfSink::disabled();
        assert!(!sink.is_enabled());
        {
            let _g = sink.phase(Phase::Dispatch);
            sink.io_submitted();
            sink.event_dispatched();
        }
        sink.finish(SimTime::from_nanos(5));
        let r = sink.report();
        assert_eq!(r.ios_submitted, 0);
        assert!(r.phases.iter().all(|p| p.count == 0));
    }

    #[test]
    fn same_phase_reentry_counts_once() {
        let sink = ProfSink::enabled();
        {
            let _outer = sink.phase(Phase::Predict);
            // A guarded entry point calling another guarded entry point of
            // the same phase (admit -> distorted_wait): only the outer
            // guard records.
            let _inner = sink.phase(Phase::Predict);
        }
        let r = sink.report();
        assert_eq!(r.phases[Phase::Predict as usize].count, 1);
    }

    #[test]
    fn guards_record_phase_timings() {
        let sink = ProfSink::enabled();
        for _ in 0..5 {
            let _g = sink.phase(Phase::Dispatch);
            // A nested predictor call: its time lands in Predict too.
            let _p = sink.phase(Phase::Predict);
        }
        let r = sink.report();
        let dispatch = &r.phases[Phase::Dispatch as usize];
        let predict = &r.phases[Phase::Predict as usize];
        assert_eq!(dispatch.count, 5);
        assert_eq!(predict.count, 5);
        assert_eq!(dispatch.hist.total(), 5);
        assert!(dispatch.total_ns >= predict.total_ns || dispatch.total_ns > 0);
    }

    #[test]
    fn nested_guards_restore_alloc_phase() {
        let sink = ProfSink::enabled();
        let outside = alloc::thread_phase();
        {
            let _d = sink.phase(Phase::Dispatch);
            assert_eq!(alloc::thread_phase(), Phase::Dispatch as usize);
            {
                let _p = sink.phase(Phase::Predict);
                assert_eq!(alloc::thread_phase(), Phase::Predict as usize);
            }
            assert_eq!(alloc::thread_phase(), Phase::Dispatch as usize);
        }
        assert_eq!(alloc::thread_phase(), outside);
    }

    #[test]
    fn throughput_meter_counts_ios_and_events() {
        let sink = ProfSink::enabled();
        for _ in 0..10 {
            sink.io_submitted();
        }
        for _ in 0..20 {
            sink.event_dispatched();
        }
        sink.finish(SimTime::from_nanos(1_000_000_000));
        let r = sink.report();
        assert_eq!(r.ios_submitted, 10);
        assert_eq!(r.events_dispatched, 20);
        assert_eq!(r.sim_elapsed_ns, 1_000_000_000);
        assert!(r.wall_elapsed_ns > 0, "finish() stamps a wall span");
        assert!(r.sim_ios_per_wall_sec() > 0.0);
    }

    #[test]
    fn gauge_ring_is_bounded_and_compaction_is_counted() {
        let sink = ProfSink::enabled();
        for i in 0..(GAUGE_CAPACITY * 2 + 10) {
            sink.sample_gauges(GaugeSample {
                at: SimTime::from_nanos(i as u64),
                event_ring: i,
                inflight_ios: 1,
                queue_depth: 2,
            });
        }
        let r = sink.report();
        assert!(r.gauges.len() <= GAUGE_CAPACITY + 1);
        assert!(r.gauges_dropped > 0, "eviction is visible, not silent");
        // The surviving samples still span the whole run.
        let first = r.gauges.first().expect("non-empty").at;
        let last = r.gauges.last().expect("non-empty").at;
        assert!(last > first);
    }

    #[test]
    fn pow2_hist_quantiles_bracket_samples() {
        let mut h = Pow2Hist::new();
        for ns in [100u64, 200, 400, 800, 100_000] {
            h.observe(ns);
        }
        assert_eq!(h.total(), 5);
        assert_eq!(h.max_ns(), 100_000);
        let p50 = h.quantile_ns(0.5);
        assert!((128..=512).contains(&p50), "p50 bucket bound = {p50}");
        assert!(h.quantile_ns(1.0) >= 100_000);
        assert!(h.mean_ns() > 0.0);
    }

    #[test]
    fn clones_share_one_collector() {
        let sink = ProfSink::enabled();
        let other = sink.clone();
        other.io_submitted();
        sink.io_submitted();
        assert_eq!(sink.report().ios_submitted, 2);
    }
}
