//! The LSM engine: memtable, leveled tables, table cache, compaction.

use std::collections::{BTreeSet, HashMap};

use crate::sstable::{SsTable, TableId, BLOCK_SIZE, INDEX_SIZE};

/// Engine tuning parameters.
#[derive(Debug, Clone)]
pub struct LsmConfig {
    /// Number of leveled tiers below L0.
    pub levels: u8,
    /// Bytes buffered in the memtable before a flush.
    pub memtable_budget: u64,
    /// Bytes per SSTable.
    pub table_size: u64,
    /// Bloom filter false-positive rate.
    pub bloom_fp_rate: f64,
    /// Table-cache capacity (tables whose index block is in memory).
    pub table_cache_capacity: usize,
    /// Keyspace the engine serves.
    pub keyspace: u64,
    /// L0 table count that triggers a compaction.
    pub l0_trigger: usize,
    /// Table-count ratio between adjacent levels.
    pub level_ratio: usize,
    /// Device region where tables are placed.
    pub region_offset: u64,
    /// Size of that region in bytes.
    pub region_size: u64,
}

impl Default for LsmConfig {
    /// A LevelDB-flavoured configuration: 2 MB tables, 4 MB memtable,
    /// 1% blooms, three leveled tiers at 10x fan-out.
    fn default() -> Self {
        LsmConfig {
            levels: 3,
            memtable_budget: 4 << 20,
            table_size: 2 << 20,
            bloom_fp_rate: 0.01,
            table_cache_capacity: 64,
            keyspace: 1_000_000,
            l0_trigger: 4,
            level_ratio: 10,
            region_offset: 10_000_000_000,
            region_size: 400_000_000_000,
        }
    }
}

/// One block IO the engine asks the storage stack to perform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LsmIo {
    /// Device byte offset.
    pub offset: u64,
    /// Length in bytes.
    pub len: u32,
    /// Read (true) or write.
    pub is_read: bool,
}

/// One step of a `get()` lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GetStep {
    /// Served from the memtable; no IO.
    MemtableHit,
    /// Table-cache miss: the table's index block must be read first.
    IndexRead {
        /// Table whose index is fetched.
        table: TableId,
        /// Index block offset.
        offset: u64,
        /// Index block length.
        len: u32,
    },
    /// A data-block read probing this table for the key.
    DataRead {
        /// Table probed.
        table: TableId,
        /// Data block offset.
        offset: u64,
        /// Data block length.
        len: u32,
        /// True if the key is actually here (the walk ends).
        found: bool,
    },
}

/// The full lookup plan for one key.
#[derive(Debug, Clone, Default)]
pub struct GetPlan {
    /// IO/memory steps in execution order.
    pub steps: Vec<GetStep>,
    /// Whether the key exists in the engine.
    pub found: bool,
}

/// A background compaction: reads of the inputs, writes of the merged
/// outputs.
#[derive(Debug, Clone, Default)]
pub struct CompactionJob {
    /// Input-table reads (sequential chunks).
    pub reads: Vec<LsmIo>,
    /// Output-table writes.
    pub writes: Vec<LsmIo>,
    /// Source level that was compacted.
    pub from_level: u8,
}

/// Engine operation counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct LsmStats {
    /// get() calls served.
    pub gets: u64,
    /// Served entirely from the memtable.
    pub memtable_hits: u64,
    /// Data-block reads caused by bloom false positives.
    pub bloom_false_probes: u64,
    /// Index blocks read (table-cache misses).
    pub index_reads: u64,
    /// Data blocks read.
    pub data_reads: u64,
    /// Memtable flushes.
    pub flushes: u64,
    /// Compactions run.
    pub compactions: u64,
}

fn level_hash(key: u64) -> u64 {
    let mut x = key.wrapping_mul(0xA24B_AED4_963E_E407);
    x ^= x >> 29;
    x = x.wrapping_mul(0x9FB2_1C65_1E98_DF25);
    x ^ (x >> 32)
}

/// A LevelDB-like engine over a simulated device region.
pub struct LsmEngine {
    cfg: LsmConfig,
    /// `levels[0]` is L0 (newest first); `levels[l]` for l >= 1 is sorted
    /// by key range and non-overlapping.
    levels: Vec<Vec<SsTable>>,
    /// Keys captured by each L0 table (from its flush).
    l0_keys: HashMap<TableId, BTreeSet<u64>>,
    memtable: BTreeSet<u64>,
    memtable_bytes: u64,
    /// Keys whose residence level changed since preload (flush/compact).
    overrides: HashMap<u64, u8>,
    /// Table cache: table id -> LRU stamp.
    cache: HashMap<TableId, u64>,
    cache_stamp: u64,
    next_table: u64,
    alloc_cursor: u64,
    stats: LsmStats,
}

impl LsmEngine {
    /// Builds an engine preloaded with a full complement of leveled tables
    /// covering the keyspace — the steady state of a long-running store.
    /// Each key resides at a level picked deterministically by hash,
    /// weighted by level capacity (deeper levels hold more data).
    pub fn preloaded(cfg: LsmConfig) -> Self {
        assert!(cfg.levels >= 1, "need at least one leveled tier");
        assert!(cfg.keyspace > 0, "empty keyspace");
        let mut engine = LsmEngine {
            levels: vec![Vec::new(); cfg.levels as usize + 1],
            l0_keys: HashMap::new(),
            memtable: BTreeSet::new(),
            memtable_bytes: 0,
            overrides: HashMap::new(),
            cache: HashMap::new(),
            cache_stamp: 0,
            next_table: 0,
            alloc_cursor: 0,
            stats: LsmStats::default(),
            cfg,
        };
        for level in 1..=engine.cfg.levels {
            let count = engine.tables_at(level);
            let span = engine.cfg.keyspace / count as u64;
            for i in 0..count {
                let min_key = i as u64 * span;
                let max_key = if i + 1 == count {
                    engine.cfg.keyspace - 1
                } else {
                    (i as u64 + 1) * span - 1
                };
                let t = engine.new_table(level, min_key, max_key);
                engine.levels[level as usize].push(t);
            }
        }
        engine
    }

    fn tables_at(&self, level: u8) -> usize {
        // L1 has `level_ratio` tables, L2 ratio^2, ...
        self.cfg.level_ratio.pow(u32::from(level))
    }

    fn new_table(&mut self, level: u8, min_key: u64, max_key: u64) -> SsTable {
        let id = TableId(self.next_table);
        self.next_table += 1;
        let offset = self.cfg.region_offset
            + (self.alloc_cursor % (self.cfg.region_size / self.cfg.table_size))
                * self.cfg.table_size;
        self.alloc_cursor += 1;
        SsTable {
            id,
            level,
            min_key,
            max_key,
            offset,
            size: self.cfg.table_size,
            bloom_fp_rate: self.cfg.bloom_fp_rate,
        }
    }

    /// The level a preloaded key resides at (capacity-weighted hash).
    fn home_level(&self, key: u64) -> u8 {
        let total: u64 = (1..=self.cfg.levels)
            .map(|l| self.tables_at(l) as u64)
            .sum();
        let mut slot = level_hash(key) % total;
        for l in 1..=self.cfg.levels {
            let cap = self.tables_at(l) as u64;
            if slot < cap {
                return l;
            }
            slot -= cap;
        }
        self.cfg.levels
    }

    /// The level `key` currently resides at, accounting for writes.
    pub fn residence(&self, key: u64) -> u8 {
        self.overrides
            .get(&key)
            .copied()
            .unwrap_or_else(|| self.home_level(key))
    }

    fn cache_touch(&mut self, id: TableId) -> bool {
        let hit = self.cache.contains_key(&id);
        self.cache_stamp += 1;
        self.cache.insert(id, self.cache_stamp);
        if self.cache.len() > self.cfg.table_cache_capacity {
            // Stamps are unique (monotonic counter), but tie-break on the
            // table id anyway so eviction can never depend on map layout.
            // mitt-lint: allow(D003, "min over (stamp, id) keys is order-insensitive")
            if let Some((&evict, _)) = self.cache.iter().min_by_key(|(&t, &s)| (s, t)) {
                self.cache.remove(&evict);
            }
        }
        hit
    }

    fn probe(&mut self, table: &SsTable, key: u64, found: bool, plan: &mut GetPlan) {
        if !self.cache_touch(table.id) {
            self.stats.index_reads += 1;
            plan.steps.push(GetStep::IndexRead {
                table: table.id,
                offset: table.index_offset(),
                len: INDEX_SIZE,
            });
        }
        self.stats.data_reads += 1;
        if !found {
            self.stats.bloom_false_probes += 1;
        }
        plan.steps.push(GetStep::DataRead {
            table: table.id,
            offset: table.block_offset(key),
            len: BLOCK_SIZE,
            found,
        });
    }

    /// Plans the IOs for `get(key)` — LevelDB's read path: memtable, then
    /// L0 newest-first, then one candidate table per level, with bloom
    /// filters pruning non-holding tables (modulo false positives).
    pub fn get_plan(&mut self, key: u64) -> GetPlan {
        self.stats.gets += 1;
        let mut plan = GetPlan::default();
        if self.memtable.contains(&key) {
            self.stats.memtable_hits += 1;
            plan.steps.push(GetStep::MemtableHit);
            plan.found = true;
            return plan;
        }
        let residence = self.residence(key);
        // L0, newest first. A key resides in L0 iff some L0 table's flush
        // captured it (residence == 0).
        let l0: Vec<SsTable> = self.levels[0].clone();
        for t in l0.iter().rev() {
            if !t.covers(key) {
                continue;
            }
            let holds = residence == 0
                && self
                    .l0_keys
                    .get(&t.id)
                    .is_some_and(|keys| keys.contains(&key));
            if t.bloom_may_contain(key, holds) {
                self.probe(t, key, holds, &mut plan);
                if holds {
                    plan.found = true;
                    return plan;
                }
            }
        }
        for level in 1..=self.cfg.levels {
            let candidate = self.levels[level as usize]
                .iter()
                .find(|t| t.covers(key))
                .cloned();
            let Some(t) = candidate else {
                continue;
            };
            let holds = residence == level && key < self.cfg.keyspace;
            if t.bloom_may_contain(key, holds) {
                self.probe(&t, key, holds, &mut plan);
                if holds {
                    plan.found = true;
                    return plan;
                }
            }
        }
        plan
    }

    /// Applies a `put`: buffers in the memtable and, at the budget, flushes
    /// an L0 table. Returns the flush writes to submit (empty for a pure
    /// memtable insert).
    pub fn put(&mut self, key: u64, value_size: u32) -> Vec<LsmIo> {
        self.memtable.insert(key);
        self.memtable_bytes += u64::from(value_size) + 16;
        if self.memtable_bytes < self.cfg.memtable_budget {
            return Vec::new();
        }
        self.flush()
    }

    /// Flushes the memtable into a new L0 table; returns its writes.
    pub fn flush(&mut self) -> Vec<LsmIo> {
        if self.memtable.is_empty() {
            return Vec::new();
        }
        self.stats.flushes += 1;
        let keys = std::mem::take(&mut self.memtable);
        self.memtable_bytes = 0;
        let min_key = *keys.first().expect("non-empty");
        let max_key = *keys.last().expect("non-empty");
        let table = self.new_table(0, min_key, max_key);
        let writes = Self::sequential_ios(table.offset, table.size, false);
        for &k in &keys {
            self.overrides.insert(k, 0);
        }
        self.l0_keys.insert(table.id, keys);
        self.levels[0].push(table);
        writes
    }

    /// Runs one compaction step if a level is over budget; returns the
    /// job's IOs, or `None` when the tree is in shape.
    pub fn maybe_compact(&mut self) -> Option<CompactionJob> {
        // L0 compacts into L1 when it accumulates l0_trigger tables.
        if self.levels[0].len() >= self.cfg.l0_trigger {
            return Some(self.compact_l0());
        }
        None
    }

    fn compact_l0(&mut self) -> CompactionJob {
        self.stats.compactions += 1;
        let mut job = CompactionJob {
            from_level: 0,
            ..CompactionJob::default()
        };
        let l0 = std::mem::take(&mut self.levels[0]);
        let mut moved: BTreeSet<u64> = BTreeSet::new();
        let mut lo = u64::MAX;
        let mut hi = 0u64;
        for t in &l0 {
            job.reads
                .extend(Self::sequential_ios(t.offset, t.size, true));
            lo = lo.min(t.min_key);
            hi = hi.max(t.max_key);
            if let Some(keys) = self.l0_keys.remove(&t.id) {
                moved.extend(keys);
            }
        }
        // Overlapping L1 tables join the merge and are rewritten.
        let (overlapping, kept): (Vec<SsTable>, Vec<SsTable>) = self.levels[1]
            .drain(..)
            .partition(|t| t.max_key >= lo && t.min_key <= hi);
        for t in &overlapping {
            job.reads
                .extend(Self::sequential_ios(t.offset, t.size, true));
        }
        self.levels[1] = kept;
        // Write merged outputs: enough tables to hold inputs.
        let out_tables = (l0.len() + overlapping.len()).max(1);
        let span = ((hi - lo) / out_tables as u64).max(1);
        for i in 0..out_tables {
            let min_key = lo + i as u64 * span;
            let max_key = if i + 1 == out_tables {
                hi
            } else {
                lo + (i as u64 + 1) * span - 1
            };
            let t = self.new_table(1, min_key, max_key);
            job.writes
                .extend(Self::sequential_ios(t.offset, t.size, false));
            self.levels[1].push(t);
        }
        self.levels[1].sort_by_key(|t| t.min_key);
        for k in moved {
            self.overrides.insert(k, 1);
        }
        job
    }

    fn sequential_ios(offset: u64, size: u64, is_read: bool) -> Vec<LsmIo> {
        const CHUNK: u64 = 256 * 1024;
        let mut ios = Vec::new();
        let mut at = 0;
        while at < size {
            let len = CHUNK.min(size - at) as u32;
            ios.push(LsmIo {
                offset: offset + at,
                len,
                is_read,
            });
            at += CHUNK;
        }
        ios
    }

    /// Operation counters.
    pub fn stats(&self) -> LsmStats {
        self.stats
    }

    /// Tables currently at `level`.
    pub fn tables_at_level(&self, level: u8) -> usize {
        self.levels[level as usize].len()
    }

    /// The engine configuration.
    pub fn config(&self) -> &LsmConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> LsmConfig {
        LsmConfig {
            levels: 2,
            level_ratio: 4,
            keyspace: 10_000,
            memtable_budget: 64 * 1024,
            table_size: 256 * 1024,
            table_cache_capacity: 8,
            ..LsmConfig::default()
        }
    }

    #[test]
    fn preloaded_levels_partition_the_keyspace() {
        let e = LsmEngine::preloaded(small());
        assert_eq!(e.tables_at_level(0), 0);
        assert_eq!(e.tables_at_level(1), 4);
        assert_eq!(e.tables_at_level(2), 16);
        // Every key is covered by exactly one table per level.
        for key in (0..10_000).step_by(97) {
            for level in 1..=2 {
                let covering = e.levels[level].iter().filter(|t| t.covers(key)).count();
                assert_eq!(covering, 1, "key {key} level {level}");
            }
        }
    }

    #[test]
    fn get_plan_finds_every_preloaded_key_with_one_true_data_read() {
        let mut e = LsmEngine::preloaded(small());
        for key in (0..10_000).step_by(131) {
            let plan = e.get_plan(key);
            assert!(plan.found, "key {key} must exist");
            let true_reads = plan
                .steps
                .iter()
                .filter(|s| matches!(s, GetStep::DataRead { found: true, .. }))
                .count();
            assert_eq!(true_reads, 1);
            // The found-read is the last step.
            assert!(matches!(
                plan.steps.last(),
                Some(GetStep::DataRead { found: true, .. })
            ));
        }
    }

    #[test]
    fn bloom_keeps_extra_probes_rare() {
        let mut e = LsmEngine::preloaded(small());
        let mut total_data_reads = 0usize;
        let n = 2000;
        for key in 0..n {
            let plan = e.get_plan(key);
            total_data_reads += plan
                .steps
                .iter()
                .filter(|s| matches!(s, GetStep::DataRead { .. }))
                .count();
        }
        // Ideal is exactly 1 per get; blooms allow ~1% extra.
        let per_get = total_data_reads as f64 / n as f64;
        assert!(
            (1.0..1.1).contains(&per_get),
            "data reads per get {per_get}"
        );
    }

    #[test]
    fn memtable_hits_after_put() {
        let mut e = LsmEngine::preloaded(small());
        let ios = e.put(42, 100);
        assert!(ios.is_empty(), "small put stays in memtable");
        let plan = e.get_plan(42);
        assert_eq!(plan.steps, vec![GetStep::MemtableHit]);
        assert!(plan.found);
    }

    #[test]
    fn flush_moves_keys_to_l0_and_reads_find_them_there() {
        let mut e = LsmEngine::preloaded(small());
        e.put(5000, 100);
        let writes = e.flush();
        assert!(!writes.is_empty());
        assert!(writes.iter().all(|io| !io.is_read));
        assert_eq!(e.tables_at_level(0), 1);
        let plan = e.get_plan(5000);
        assert!(plan.found);
        match plan.steps.last() {
            Some(GetStep::DataRead {
                found: true, table, ..
            }) => {
                assert!(e.l0_keys.contains_key(table), "found in an L0 table");
            }
            other => panic!("expected L0 data read, got {other:?}"),
        }
    }

    #[test]
    fn writes_eventually_trigger_flush_and_compaction() {
        let mut e = LsmEngine::preloaded(small());
        let mut flush_ios = 0usize;
        let mut compactions = 0usize;
        for key in 0..40_000u64 {
            let ios = e.put(key % 10_000, 128);
            flush_ios += ios.len();
            if let Some(job) = e.maybe_compact() {
                compactions += 1;
                assert!(!job.reads.is_empty() && !job.writes.is_empty());
                assert!(job.reads.iter().all(|io| io.is_read));
                assert!(job.writes.iter().all(|io| !io.is_read));
            }
        }
        assert!(flush_ios > 0, "flushes must happen");
        assert!(compactions > 0, "L0 must compact");
        assert!(
            e.tables_at_level(0) < small().l0_trigger,
            "compaction keeps L0 below trigger"
        );
        let s = e.stats();
        // 256KB tables flush as exactly one 256KB write chunk each.
        assert_eq!(s.flushes as usize, flush_ios);
    }

    #[test]
    fn table_cache_serves_hot_indexes() {
        let mut e = LsmEngine::preloaded(small());
        // First read of a key misses the table cache; the second hits.
        let p1 = e.get_plan(1234);
        let p2 = e.get_plan(1234);
        let idx1 = p1
            .steps
            .iter()
            .filter(|s| matches!(s, GetStep::IndexRead { .. }))
            .count();
        let idx2 = p2
            .steps
            .iter()
            .filter(|s| matches!(s, GetStep::IndexRead { .. }))
            .count();
        assert!(idx1 >= 1);
        assert_eq!(idx2, 0, "second lookup must hit the table cache");
    }

    #[test]
    fn residence_respects_overrides() {
        let mut e = LsmEngine::preloaded(small());
        let key = 777;
        let home = e.residence(key);
        assert!(home >= 1);
        e.put(key, 100);
        e.flush();
        assert_eq!(e.residence(key), 0, "flushed key now lives in L0");
    }
}
