//! A LevelDB-like LSM storage engine model.
//!
//! §5 of the MittOS paper integrates MittOS into LevelDB and propagates the
//! EBUSY up to Riak, the replicated layer above it. This crate supplies
//! that engine as a *planning* model: it tracks the logical structure of an
//! LSM tree — memtable, leveled SSTables with key ranges, per-table bloom
//! filters, a table (index-block) cache, and size-triggered compaction —
//! and translates `get`/`put` operations into the block IOs a real LevelDB
//! would issue. The storage stack (and MittOS's fast rejection of any of
//! those IOs) lives in the `mitt-cluster` node model; this crate is pure
//! bookkeeping over offsets and lengths, which is exactly what the
//! simulation needs.
//!
//! The content of keys is never materialized. Whether a table "contains" a
//! key, and whether a bloom filter false-positives, are deterministic
//! functions of hashes, so every run replays identically.
//!
//! # Examples
//!
//! ```
//! use mitt_lsm::{GetStep, LsmConfig, LsmEngine};
//!
//! let mut engine = LsmEngine::preloaded(LsmConfig::default());
//! let plan = engine.get_plan(42);
//! assert!(plan.found);
//! // The walk ends at the data block that holds the key.
//! assert!(matches!(plan.steps.last(), Some(GetStep::DataRead { found: true, .. })));
//! ```

pub mod engine;
pub mod sstable;

pub use engine::{CompactionJob, GetPlan, GetStep, LsmConfig, LsmEngine, LsmIo, LsmStats};
pub use sstable::{SsTable, TableId};
