//! SSTable metadata: key ranges, block layout, and a deterministic bloom
//! filter model.

/// Identifier of one SSTable within an engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TableId(pub u64);

/// Data-block size used for reads (LevelDB's default is 4 KB).
pub const BLOCK_SIZE: u32 = 4096;

/// Index/footer block size read when a table is opened or missed in the
/// table cache.
pub const INDEX_SIZE: u32 = 16 * 1024;

fn mix(a: u64, b: u64) -> u64 {
    let mut x = a ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Metadata of one on-disk sorted table.
#[derive(Debug, Clone)]
pub struct SsTable {
    /// Unique id (also the bloom/salt seed).
    pub id: TableId,
    /// Level this table lives on (0 = freshest).
    pub level: u8,
    /// Smallest key covered (inclusive).
    pub min_key: u64,
    /// Largest key covered (inclusive).
    pub max_key: u64,
    /// Byte offset of the table's data on the device.
    pub offset: u64,
    /// Total size in bytes (data + index).
    pub size: u64,
    /// Bloom filter false positive rate for keys not in the table.
    pub bloom_fp_rate: f64,
}

impl SsTable {
    /// True if `key` falls inside this table's key range.
    pub fn covers(&self, key: u64) -> bool {
        (self.min_key..=self.max_key).contains(&key)
    }

    /// Deterministic bloom-filter check: always true when the table holds
    /// the key; otherwise a pseudo-random false positive at the configured
    /// rate, stable per (table, key).
    pub fn bloom_may_contain(&self, key: u64, holds_key: bool) -> bool {
        if holds_key {
            return true;
        }
        let h = mix(self.id.0, key);
        (h as f64 / u64::MAX as f64) < self.bloom_fp_rate
    }

    /// Byte offset of the data block that would hold `key` (a stable
    /// pseudo-position within the table's data region).
    pub fn block_offset(&self, key: u64) -> u64 {
        let data = self
            .size
            .saturating_sub(u64::from(INDEX_SIZE))
            .max(u64::from(BLOCK_SIZE));
        let blocks = (data / u64::from(BLOCK_SIZE)).max(1);
        let slot = mix(self.id.0 ^ 0xB10C, key) % blocks;
        self.offset + slot * u64::from(BLOCK_SIZE)
    }

    /// Byte offset of the table's index/footer block.
    pub fn index_offset(&self) -> u64 {
        self.offset + self.size.saturating_sub(u64::from(INDEX_SIZE))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> SsTable {
        SsTable {
            id: TableId(7),
            level: 1,
            min_key: 100,
            max_key: 200,
            offset: 1 << 30,
            size: 2 << 20,
            bloom_fp_rate: 0.01,
        }
    }

    #[test]
    fn covers_is_inclusive() {
        let t = table();
        assert!(t.covers(100) && t.covers(200) && t.covers(150));
        assert!(!t.covers(99) && !t.covers(201));
    }

    #[test]
    fn bloom_never_misses_held_keys() {
        let t = table();
        for key in 0..1000 {
            assert!(t.bloom_may_contain(key, true));
        }
    }

    #[test]
    fn bloom_false_positive_rate_is_near_config() {
        let t = table();
        let fps = (0..100_000)
            .filter(|&k| t.bloom_may_contain(k, false))
            .count();
        let rate = fps as f64 / 100_000.0;
        assert!((0.005..0.02).contains(&rate), "rate {rate}");
    }

    #[test]
    fn bloom_is_deterministic() {
        let t = table();
        for key in 0..100 {
            assert_eq!(
                t.bloom_may_contain(key, false),
                t.bloom_may_contain(key, false)
            );
        }
    }

    #[test]
    fn block_offsets_stay_inside_table() {
        let t = table();
        for key in 0..1000 {
            let off = t.block_offset(key);
            assert!(off >= t.offset);
            assert!(off + u64::from(BLOCK_SIZE) <= t.offset + t.size);
        }
    }

    #[test]
    fn index_sits_at_table_end() {
        let t = table();
        assert_eq!(t.index_offset(), t.offset + t.size - u64::from(INDEX_SIZE));
    }
}
