//! Property-based tests for the LSM engine.

#![cfg(feature = "props")]
// Gated: `proptest` is a crates.io dependency, unavailable offline.
// See the root Cargo.toml note to re-enable.

use proptest::prelude::*;

use mitt_lsm::{GetStep, LsmConfig, LsmEngine};

fn cfg(levels: u8, ratio: usize, keyspace: u64) -> LsmConfig {
    LsmConfig {
        levels,
        level_ratio: ratio,
        keyspace,
        memtable_budget: 64 * 1024,
        table_size: 256 * 1024,
        table_cache_capacity: 8,
        ..LsmConfig::default()
    }
}

proptest! {
    /// Every key in the keyspace is found, and the found-read is always
    /// the final step of the plan.
    #[test]
    fn every_key_is_found(
        levels in 1u8..3,
        ratio in 2usize..6,
        keyspace in 1000u64..50_000,
        keys in prop::collection::vec(0u64..50_000, 1..50),
    ) {
        let mut e = LsmEngine::preloaded(cfg(levels, ratio, keyspace));
        for &k in keys.iter().filter(|&&k| k < keyspace) {
            let plan = e.get_plan(k);
            prop_assert!(plan.found, "key {k} missing");
            match plan.steps.last() {
                Some(GetStep::MemtableHit) => {}
                Some(GetStep::DataRead { found, .. }) => prop_assert!(found),
                other => prop_assert!(false, "bad final step {other:?}"),
            }
        }
    }

    /// Reads after arbitrary writes still find every written key, through
    /// flushes and compactions.
    #[test]
    fn writes_remain_readable(
        writes in prop::collection::vec(0u64..10_000, 1..400),
        read_sample in prop::collection::vec(any::<prop::sample::Index>(), 1..20),
    ) {
        let mut e = LsmEngine::preloaded(cfg(2, 4, 10_000));
        for &k in &writes {
            e.put(k, 512);
            let _ = e.maybe_compact();
        }
        for idx in read_sample {
            let k = writes[idx.index(writes.len())];
            let plan = e.get_plan(k);
            prop_assert!(plan.found, "written key {k} lost");
        }
    }

    /// All planned IOs stay inside the engine's device region.
    #[test]
    fn planned_ios_stay_in_region(keys in prop::collection::vec(0u64..10_000, 1..100)) {
        let c = cfg(2, 4, 10_000);
        let lo = c.region_offset;
        let hi = c.region_offset + c.region_size;
        let mut e = LsmEngine::preloaded(c);
        for &k in &keys {
            for step in e.get_plan(k).steps {
                match step {
                    GetStep::MemtableHit => {}
                    GetStep::IndexRead { offset, len, .. }
                    | GetStep::DataRead { offset, len, .. } => {
                        prop_assert!(offset >= lo && offset + u64::from(len) <= hi);
                    }
                }
            }
        }
    }

    /// Compaction keeps L0 bounded no matter the write pattern.
    #[test]
    fn l0_stays_bounded(writes in prop::collection::vec(0u64..10_000, 1..2000)) {
        let c = cfg(2, 4, 10_000);
        let trigger = c.l0_trigger;
        let mut e = LsmEngine::preloaded(c);
        for &k in &writes {
            e.put(k, 256);
            while e.maybe_compact().is_some() {}
            prop_assert!(e.tables_at_level(0) < trigger);
        }
    }
}
