//! Quickstart: the MittOS principle in thirty lines.
//!
//! A disk predictor is built from a measured device profile; IOs with
//! deadlines are admitted while the predicted wait fits, and rejected with
//! EBUSY the instant it cannot — no waiting, no speculation.
//!
//! Run with: `cargo run --release --example quickstart`

use mittos_repro::device::{BlockIo, DiskSpec, IoIdGen, ProcessId};
use mittos_repro::os::{Decision, DiskProfile, MittNoop, DEFAULT_HOP};
use mittos_repro::sim::{Duration, SimTime};

fn main() {
    // The predictor consults a service-time model of the device — in a
    // real deployment this comes from offline profiling (§4.1); here we
    // take the analytic ground truth for brevity.
    let profile = DiskProfile::from_spec(&DiskSpec::default());
    let mut mitt = MittNoop::new(profile, DEFAULT_HOP);
    let mut ids = IoIdGen::new();
    let now = SimTime::ZERO;
    let deadline = Duration::from_millis(20);

    println!("submitting 4KB reads with a {deadline} SLO until the disk is too busy...\n");
    for i in 0.. {
        let offset = (i * 137 + 11) % 900 * 1_000_000_000;
        let io =
            BlockIo::read(ids.next_id(), offset, 4096, ProcessId(1), now).with_deadline(deadline);
        match mitt.admit(&io, now) {
            Decision::Admit { predicted_wait } => {
                println!(
                    "io {i:>2}: admitted  (predicted wait {:>8.2}ms)",
                    predicted_wait.as_millis_f64()
                );
            }
            Decision::Reject { predicted_wait } => {
                println!(
                    "io {i:>2}: EBUSY     (predicted wait {:>8.2}ms > {:.1}ms + hop)",
                    predicted_wait.as_millis_f64(),
                    deadline.as_millis_f64()
                );
                println!("\nThe application now fails over to another replica instantly —");
                println!("no 20ms timeout, no duplicate request, one network hop.");
                break;
            }
        }
    }
}
