//! A noisy-neighbor scenario on one node: watch the predictor track the
//! disk as another tenant floods it, and see which requests MittOS saves.
//!
//! This drives the full per-node OS stack (CFQ scheduler, SSTF device
//! queue, MittCFQ predictor) through a burst of competing 1 MB reads, the
//! paper's §7.2 noise injector.
//!
//! Run with: `cargo run --release --example noisy_neighbor`

use mittos_repro::cluster::node::{Node, NodeConfig, ReadOutcome, ReadReq};
use mittos_repro::device::{IoClass, ProcessId, GB};
use mittos_repro::sim::{Duration, EventQueue, SimRng, SimTime};

enum Ev {
    TenantRead(u32),
    NoiseRead(u32),
    DiskTick,
}

fn main() {
    let mut rng = SimRng::new(7);
    let mut node = Node::new(0, NodeConfig::disk_cfq(), &mut rng);
    let mut q: EventQueue<Ev> = EventQueue::new();
    let deadline = Duration::from_millis(20);

    // Tenant A: 4KB reads every 25ms with a 20ms SLO.
    for i in 0..40 {
        q.schedule(
            SimTime::ZERO + Duration::from_millis(25) * u64::from(i),
            Ev::TenantRead(i),
        );
    }
    // Tenant B (the noisy neighbor): a burst of 1MB reads between t=300ms
    // and t=600ms, two kept outstanding.
    for i in 0..2 {
        q.schedule(SimTime::ZERO + Duration::from_millis(300), Ev::NoiseRead(i));
    }
    let noise_end = SimTime::ZERO + Duration::from_millis(600);

    let mut admitted = 0u32;
    let mut rejected = 0u32;
    let mut noise_rng = rng.fork();
    while let Some((now, ev)) = q.pop() {
        match ev {
            Ev::TenantRead(i) => {
                let offset = (u64::from(i) * 37 + 5) % 900 * GB;
                let req = ReadReq::client(offset, 4096, ProcessId(1)).with_deadline(deadline);
                match node.submit_read(&req, now).outcome {
                    ReadOutcome::Busy { predicted_wait, .. } => {
                        rejected += 1;
                        println!(
                            "[{:>7.1}ms] read {i:>2}: EBUSY (predicted wait {:.1}ms) -> failover",
                            now.as_millis_f64(),
                            predicted_wait.as_millis_f64()
                        );
                    }
                    ReadOutcome::Submitted { ticks, .. } => {
                        admitted += 1;
                        if let Some(s) = ticks.disk {
                            q.schedule(s.done_at, Ev::DiskTick);
                        }
                    }
                    ReadOutcome::CacheHit { .. } => unreachable!("no cache configured"),
                }
            }
            Ev::NoiseRead(slot) => {
                if now >= noise_end {
                    continue;
                }
                let offset = noise_rng.range_u64(0, 900) * GB;
                let req = ReadReq::client(offset, 1 << 20, ProcessId(99))
                    .with_ionice(IoClass::BestEffort, 4);
                if let ReadOutcome::Submitted { ticks, .. } = node.submit_read(&req, now).outcome {
                    if let Some(s) = ticks.disk {
                        q.schedule(s.done_at, Ev::DiskTick);
                    }
                }
                // Reissue at roughly the service rate so the burst keeps
                // ~2 reads outstanding without unbounded backlog.
                q.schedule(now + Duration::from_millis(26), Ev::NoiseRead(slot));
            }
            Ev::DiskTick => {
                let out = node.on_disk_tick(now);
                if let Some(next) = out.next {
                    q.schedule(next.done_at, Ev::DiskTick);
                }
            }
        }
    }
    println!("\n{admitted} reads admitted, {rejected} rejected with EBUSY during the noise burst.");
    println!("Every rejection was an instant (<5us) failover instead of a ~20ms+ stall.");
}
