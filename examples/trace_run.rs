//! A traced MittOS run: structured events, metrics, and a Chrome trace.
//!
//! Runs the 3-replica rotating-contention microbenchmark with
//! `ExperimentConfig::trace` enabled, prints the latency summary and the
//! per-run trace report (rejections by subsystem, per-node EBUSY rates,
//! prediction-error histogram), prints the SLO-attribution summary, and
//! exports the event ring as Chrome `trace_event` JSON — with per-predictor
//! calibration counter tracks merged in — open it at `chrome://tracing` or
//! <https://ui.perfetto.dev>.
//!
//! Run with: `cargo run --release --example trace_run [out.json]`
//! (default output path: `trace_run.json`)

use mitt_bench::print_trace_report;
use mitt_obs::attribution::AttributionSummary;
use mitt_obs::calibration::{chrome_export_with_counters, CalibrationConfig};
use mittos_repro::cluster::{
    run_experiment, ExperimentConfig, InitialReplica, NodeConfig, NoiseKind, NoiseStream, Strategy,
};
use mittos_repro::device::IoClass;
use mittos_repro::sim::Duration;
use mittos_repro::workload::rotating_schedule;

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "trace_run.json".to_string());

    let mut cfg = ExperimentConfig::micro(
        NodeConfig::disk_cfq(),
        Strategy::MittOs {
            deadline: Duration::from_millis(15),
        },
    );
    cfg.seed = 21;
    cfg.clients = 3;
    cfg.ops_per_client = 200;
    cfg.initial_replica = InitialReplica::Random;
    cfg.think_time = Duration::from_millis(5);
    cfg.noise = vec![NoiseStream {
        kind: NoiseKind::DiskReads {
            len: 1 << 20,
            class: IoClass::BestEffort,
            priority: 4,
        },
        schedules: rotating_schedule(3, Duration::from_secs(1), Duration::from_secs(600), 4),
    }];
    cfg.trace = true;

    let mut res = run_experiment(cfg);
    println!(
        "600 gets under rotating contention, MittOS(15ms): \
         avg {:.2}ms p95 {:.2}ms p99 {:.2}ms | {} EBUSYs, {} retries",
        res.get_latencies.mean().as_millis_f64(),
        res.get_latencies.percentile(95.0).as_millis_f64(),
        res.get_latencies.percentile(99.0).as_millis_f64(),
        res.ebusy,
        res.retries
    );

    print_trace_report("trace report", &res.trace);

    let attribution = AttributionSummary::from_sink(&res.trace, mittos::DEFAULT_HOP);
    println!("\n{}", attribution.render());

    let json = chrome_export_with_counters(&res.trace, CalibrationConfig::default());
    std::fs::write(&out_path, &json).expect("write trace JSON");
    println!(
        "\nwrote {} events ({} bytes) to {out_path}",
        res.trace.len(),
        json.len()
    );
    println!("open chrome://tracing (or https://ui.perfetto.dev) and load the file.");
}
