//! A replicated key-value cluster under rotating contention: Base vs
//! Hedged vs MittOS, end to end.
//!
//! Reproduces the deployment model of Figure 1: three replicas, one of
//! them always severely contended (rotating every second), YCSB-style 4 KB
//! gets. Compare how each tail-tolerance strategy copes.
//!
//! Run with: `cargo run --release --example slo_failover_cluster`

use mittos_repro::cluster::{
    run_experiment, ExperimentConfig, InitialReplica, NodeConfig, NoiseKind, NoiseStream, Strategy,
};
use mittos_repro::device::IoClass;
use mittos_repro::sim::Duration;
use mittos_repro::workload::rotating_schedule;

fn run(strategy: Strategy) -> (String, [f64; 4], u64, u64) {
    let name = strategy.name().to_string();
    let mut cfg = ExperimentConfig::micro(NodeConfig::disk_cfq(), strategy);
    cfg.seed = 21;
    cfg.clients = 3;
    cfg.ops_per_client = 400;
    cfg.initial_replica = InitialReplica::Random;
    cfg.think_time = Duration::from_millis(5);
    cfg.noise = vec![NoiseStream {
        kind: NoiseKind::DiskReads {
            len: 1 << 20,
            class: IoClass::BestEffort,
            priority: 4,
        },
        schedules: rotating_schedule(3, Duration::from_secs(1), Duration::from_secs(600), 4),
    }];
    let mut res = run_experiment(cfg);
    let stats = [
        res.get_latencies.mean().as_millis_f64(),
        res.get_latencies.percentile(90.0).as_millis_f64(),
        res.get_latencies.percentile(95.0).as_millis_f64(),
        res.get_latencies.percentile(99.0).as_millis_f64(),
    ];
    (name, stats, res.ebusy, res.retries)
}

fn main() {
    println!("3 replicas, one severely contended (rotating every 1s), 1200 gets:\n");
    println!(
        "{:>8} | {:>8} {:>8} {:>8} {:>8} | {:>7} {:>8}",
        "strategy", "avg(ms)", "p90", "p95", "p99", "EBUSYs", "retries"
    );
    for strategy in [
        Strategy::Base,
        Strategy::Hedged {
            after: Duration::from_millis(15),
        },
        Strategy::MittOs {
            deadline: Duration::from_millis(15),
        },
    ] {
        let (name, s, ebusy, retries) = run(strategy);
        println!(
            "{:>8} | {:>8.2} {:>8.2} {:>8.2} {:>8.2} | {:>7} {:>8}",
            name, s[0], s[1], s[2], s[3], ebusy, retries
        );
    }
    println!("\nMittOS never waits for a timeout: the contended replica answers EBUSY in");
    println!("microseconds and the client retries a quiet replica immediately.");
}
