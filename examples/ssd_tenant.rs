//! MittSSD on a host-managed SSD: a read-mostly tenant with a sub-ms SLO
//! sharing chips with a write-heavy tenant.
//!
//! Shows the §4.3 mechanics directly: per-chip next-free mirrors, the MLC
//! program-time pattern, erase accounting, and whole-request rejection of
//! striped reads when any sub-page's chip is busy.
//!
//! Run with: `cargo run --release --example ssd_tenant`

use mittos_repro::device::{BlockIo, IoIdGen, ProcessId, Ssd, SsdSpec};
use mittos_repro::os::{Decision, MittSsd, SsdProfile, DEFAULT_HOP};
use mittos_repro::sim::{Duration, SimRng, SimTime};

fn main() {
    let spec = SsdSpec::default();
    let mut ssd = Ssd::new(spec.clone(), SimRng::new(3));
    // The OS runs the FTL, so the predictor profiles the drive once and
    // mirrors every chip (here: profile from spec for brevity).
    let mut mitt = MittSsd::new(&spec, SsdProfile::from_spec(&spec), DEFAULT_HOP);
    let mut ids = IoIdGen::new();
    let page = u64::from(spec.page_size);
    let now = SimTime::ZERO;

    println!(
        "SSD: {} channels x {} chips, {}KB pages, reads {}, programs {}/{}\n",
        spec.channels,
        spec.chips_per_channel,
        spec.page_size / 1024,
        spec.read_page,
        spec.prog_fast,
        spec.prog_slow,
    );

    // Tenant W floods chips 0..8 with writes.
    println!("tenant W writes 8 x 16KB pages (chips 0-7):");
    for i in 0..8u64 {
        let w = BlockIo::write(ids.next_id(), i * page, 4096, ProcessId(2), now);
        mitt.account(&w, now);
        let out = ssd.submit(&w, now);
        println!(
            "  write -> chip {} busy until {}",
            out.subs[0].chip, out.subs[0].done_at
        );
    }

    // Tenant R expects sub-ms reads.
    let slo = Duration::from_micros(500);
    println!("\ntenant R reads with a {slo} SLO:");
    for (label, offset, len) in [
        ("read on a written chip    ", 0u64, 4096u32),
        ("read on a quiet chip      ", 100 * page, 4096),
        ("striped read crossing both", 6 * page, 4 * spec.page_size),
    ] {
        let r = BlockIo::read(ids.next_id(), offset, len, ProcessId(1), now).with_deadline(slo);
        match mitt.admit(&r, now) {
            Decision::Admit { predicted_wait } => println!(
                "  {label}: admitted (wait {:.0}us)",
                predicted_wait.as_micros_f64()
            ),
            Decision::Reject { predicted_wait } => println!(
                "  {label}: EBUSY    (wait {:.0}us) -> retry another replica",
                predicted_wait.as_micros_f64()
            ),
        }
    }

    println!("\nafter an erase on chip 100 (6ms):");
    ssd.erase(100, now);
    mitt.on_erase(100, now);
    let r = BlockIo::read(ids.next_id(), 100 * page, 4096, ProcessId(1), now).with_deadline(slo);
    match mitt.admit(&r, now) {
        Decision::Admit { .. } => println!("  read on chip 100: admitted"),
        Decision::Reject { predicted_wait } => println!(
            "  read on chip 100: EBUSY (wait {:.1}ms — the erase)",
            predicted_wait.as_millis_f64()
        ),
    }
}
