//! The LevelDB+Riak two-level integration (§5) end to end: a replicated
//! cluster whose nodes each run an LSM engine; an EBUSY on *any* of a
//! lookup's block reads propagates to the coordinator, which fails the
//! whole get over.
//!
//! Run with: `cargo run --release --example lsm_store`

use mittos_repro::cluster::{
    run_experiment, ExperimentConfig, InitialReplica, NodeConfig, NoiseKind, NoiseStream, Strategy,
};
use mittos_repro::device::IoClass;
use mittos_repro::lsm::{LsmConfig, LsmEngine};
use mittos_repro::sim::Duration;
use mittos_repro::workload::rotating_schedule;

fn main() {
    // First, the engine itself: what does one lookup cost?
    let mut engine = LsmEngine::preloaded(LsmConfig::default());
    let plan = engine.get_plan(123_456);
    println!(
        "lookup plan for key 123456 ({} steps, found={}):",
        plan.steps.len(),
        plan.found
    );
    for step in &plan.steps {
        println!("  {step:?}");
    }
    let stats = engine.stats();
    println!(
        "engine stats: {} gets, {} index reads, {} data reads\n",
        stats.gets, stats.index_reads, stats.data_reads
    );

    // Then the replicated store under rotating contention.
    let run = |strategy: Strategy| {
        let mut cfg = ExperimentConfig::micro(NodeConfig::disk_cfq(), strategy);
        cfg.seed = 5;
        cfg.clients = 3;
        cfg.ops_per_client = 300;
        cfg.record_count = 500_000;
        cfg.write_fraction = 0.05;
        cfg.engine = Some(LsmConfig::default());
        cfg.initial_replica = InitialReplica::Random;
        cfg.think_time = Duration::from_millis(5);
        cfg.noise = vec![NoiseStream {
            kind: NoiseKind::DiskReads {
                len: 1 << 20,
                class: IoClass::BestEffort,
                priority: 4,
            },
            schedules: rotating_schedule(3, Duration::from_secs(1), Duration::from_secs(600), 4),
        }];
        run_experiment(cfg)
    };

    println!("Riak-like coordinator over 3 LevelDB-like replicas, 1 rotating-busy:");
    println!(
        "{:>8} | {:>8} {:>8} {:>8} | {:>7} {:>8}",
        "strategy", "p50(ms)", "p95", "p99", "EBUSYs", "errors"
    );
    for strategy in [
        Strategy::Base,
        Strategy::MittOs {
            deadline: Duration::from_millis(25),
        },
    ] {
        let name = strategy.name();
        let mut res = run(strategy);
        println!(
            "{:>8} | {:>8.2} {:>8.2} {:>8.2} | {:>7} {:>8}",
            name,
            res.get_latencies.percentile(50.0).as_millis_f64(),
            res.get_latencies.percentile(95.0).as_millis_f64(),
            res.get_latencies.percentile(99.0).as_millis_f64(),
            res.ebusy,
            res.errors,
        );
    }
    println!("\nEvery engine-level block read carries the deadline; the coordinator");
    println!("re-routes the whole get the moment any of them returns EBUSY.");
}
